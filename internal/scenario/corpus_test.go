package scenario

// The checked-in chaos corpus, exercised from Go: the hand-rolled chaos
// and kill-sweep tests ported onto scenario files, with the same
// assertions they made before — bit-identical physics against the
// fault-free reference, monotone wall clock, respawns equal to the kill
// schedule's total.  The corpus lives in /scenarios; these tests are the
// tier-1 gate that keeps it honest between CI corpus runs.

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"opalperf/internal/telemetry"
)

const corpusDir = "../../scenarios"

func loadCorpus(t *testing.T, name string) *Spec {
	t.Helper()
	spec, err := Load(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestCorpusLoads keeps every checked-in scenario parseable and
// structurally valid — `scenario validate scenarios/` as a tier-1 test.
func TestCorpusLoads(t *testing.T) {
	specs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 25 {
		t.Fatalf("corpus has %d scenarios, want >= 25", len(specs))
	}
	for _, s := range specs {
		if len(s.AssertNames()) == 0 {
			t.Errorf("%s asserts nothing", s.File)
		}
		if s.Description == "" {
			t.Errorf("%s has no description", s.File)
		}
	}
}

// TestChaosCorpusSweep is the ported chaos sweep (harness
// TestChaosSweep) through the corpus: the chaos-uniform scenario swept
// over distinct fault schedules.  Identical assertions — every faulted
// run's physics bit-identical to the fault-free baseline, wall clock
// never below it — plus the sweep must actually inject something.
func TestChaosCorpusSweep(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	spec := loadCorpus(t, "chaos-uniform.yaml")
	if !spec.Assert.EnergiesBitIdentical || !spec.Assert.WallNotBelowReference {
		t.Fatalf("chaos-uniform must assert bit-identity and wall monotonicity: %v", spec.AssertNames())
	}
	injected := 0
	for _, rep := range Sweep(spec, seeds, 0) {
		if rep.Err != nil {
			t.Fatalf("sweep %d: %v", rep.Sweep, rep.Err)
		}
		for _, c := range rep.Failures() {
			t.Fatalf("sweep %d: %s: %s", rep.Sweep, c.Name, c.Detail)
		}
		injected += rep.Injected
	}
	if injected == 0 {
		t.Fatal("no sweep injected a fault; the corpus chaos rate is too low to test anything")
	}
}

// TestSelfHealKillSweepCorpus is the ported kill sweep (harness
// TestSelfHealKillSweepSim) through the corpus: seeded kill schedules,
// every death healed, physics bit-identical and Respawns equal to each
// schedule's kill count — asserted by the scenario's
// respawns_equal_kills check.
func TestSelfHealKillSweepCorpus(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	spec := loadCorpus(t, "kill-sweep.yaml")
	if !spec.Assert.RespawnsEqualKills || !spec.Assert.EnergiesBitIdentical {
		t.Fatalf("kill-sweep must assert respawns_equal_kills and bit-identity: %v", spec.AssertNames())
	}
	killed := 0
	for _, rep := range Sweep(spec, seeds, 0) {
		if rep.Err != nil {
			t.Fatalf("sweep %d: %v", rep.Sweep, rep.Err)
		}
		for _, c := range rep.Failures() {
			t.Fatalf("sweep %d: %s: %s", rep.Sweep, c.Name, c.Detail)
		}
		killed += rep.Respawns
	}
	if killed == 0 {
		t.Fatal("no schedule killed anything; the sweep is not exercising respawns")
	}
}

// TestRestartOfSelfHealingRunCorpus is the ported three-rung recovery
// ladder (harness TestRestartOfSelfHealingRun) through the corpus:
// servers die under a seeded schedule and are healed, the client is
// killed and restarted from a periodic checkpoint, and the stitched
// trajectory matches the undisturbed run bit for bit.
func TestRestartOfSelfHealingRunCorpus(t *testing.T) {
	spec := loadCorpus(t, "restart-of-healing-run.yaml")
	rep := RunScenario(spec, 0, nil)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	for _, c := range rep.Failures() {
		t.Errorf("%s: %s", c.Name, c.Detail)
	}
	if rep.Respawns == 0 {
		t.Fatal("no respawns despite a non-empty kill schedule")
	}
	if rep.Checkpoints == 0 {
		t.Fatal("no checkpoint captured before the restart")
	}
	if rep.ResumedAt == 0 {
		t.Fatal("restart replayed from scratch; the periodic checkpoint was not used")
	}
}

// TestScenarioJournalByteIdentical extends the telemetry plane's
// bit-identity invariant (TestTelemetryPhysicsBitIdentical) to the
// journal itself: the same scenario seed run twice under a pinned clock
// and run ID renders byte-identical JSONL — every field of every
// lifecycle event, including virtual times and fault attributions, is
// deterministic.
func TestScenarioJournalByteIdentical(t *testing.T) {
	spec := loadCorpus(t, "kill-sweep.yaml")
	record := func() []byte {
		telemetry.SetEnabled(true)
		defer telemetry.SetEnabled(false)
		var buf bytes.Buffer
		j := telemetry.StartJournal(&buf, 64)
		defer telemetry.StopJournal()
		telemetry.SetRun("scenario-byte-identity")
		base := time.Unix(0, 0).UTC()
		j.SetClock(func() time.Time {
			base = base.Add(time.Millisecond)
			return base
		})
		if rep := RunScenario(spec, 0, nil); rep.Err != nil {
			t.Fatal(rep.Err)
		}
		// Drop the journal_start preamble: StartJournal stamps it before
		// the clock is pinned.  Everything after is the scenario's.
		out := buf.Bytes()
		if i := bytes.IndexByte(out, '\n'); i >= 0 {
			out = out[i+1:]
		}
		return append([]byte(nil), out...)
	}
	first := record()
	second := record()
	if len(first) == 0 {
		t.Fatal("journal is empty; the scenario emitted no lifecycle events")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("journals differ between identical runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
}
