package scenario

// Executing one compiled scenario and judging its assertions.  A run is
// one leg, or two when the scenario carries a restart event: the first
// leg is killed at the restart step, the second resumes from the latest
// checkpoint (or from scratch) and the trajectories are stitched like
// harness.RunWithRestart — except the scenario engine rebases the
// absolute-step kill schedule and fault windows into the resumed leg
// itself.

import (
	"fmt"
	"math"

	"opalperf/internal/archive"
	"opalperf/internal/core"
	"opalperf/internal/harness"
	"opalperf/internal/md"
	"opalperf/internal/oracle"
	"opalperf/internal/telemetry"
)

// Check is the verdict of one assertion.
type Check struct {
	Name   string
	OK     bool
	Detail string // what was measured vs wanted, for failure reports
}

// Report is the outcome of one scenario execution at one sweep index.
type Report struct {
	Scenario string
	Sweep    int
	Err      error // compile or run failure; Checks is empty when set

	Wall    float64
	RefWall float64 // 0 when no reference assertion was requested
	Steps   int

	// EnergiesHash digests the stitched per-step total-energy trajectory
	// (the determinism witness); FinalEnergy is the last step's total.
	EnergiesHash string
	FinalEnergy  float64

	Respawns    int
	Recoveries  int
	Checkpoints int
	ResumedAt   int // absolute checkpoint step a restart resumed from
	Injected    int // faults delivered by the fault plane
	Anomalies   int

	LoDMacroPhases    int
	LoDFallbackPhases int

	Checks []Check
}

// Passed reports whether the run completed and every check held.
func (r *Report) Passed() bool {
	if r.Err != nil {
		return false
	}
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Failures returns the failed checks.
func (r *Report) Failures() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Reference runs the scenario's fault-free twin once.  Sweeping reuses
// one reference for every seed: sweeps only reseed the fault and kill
// schedules, never the physics.
func Reference(spec *Spec) (*harness.RunOutcome, error) {
	p, err := spec.compile(0)
	if err != nil {
		return nil, err
	}
	out, err := harness.Run(p.referenceSpec())
	if err != nil {
		return nil, fmt.Errorf("scenario %s: reference run: %w", spec.Name, err)
	}
	return &out, nil
}

// RunScenario executes the scenario at one sweep index and evaluates its
// assertions.  ref carries the fault-free reference outcome when the
// scenario asserts against one (see Spec.NeedsReference); pass nil to
// have it computed here.
func RunScenario(spec *Spec, sweep int, ref *harness.RunOutcome) Report {
	rep := Report{Scenario: spec.Name, Sweep: sweep}
	p, err := spec.compile(sweep)
	if err != nil {
		rep.Err = err
		return rep
	}
	if spec.NeedsReference() && ref == nil {
		if ref, err = Reference(spec); err != nil {
			rep.Err = err
			return rep
		}
	}
	telemetry.Emit("scenario_start", telemetry.F{
		"scenario": spec.Name, "sweep": sweep, "steps": spec.Fleet.Steps,
		"servers": spec.Fleet.Servers,
	})

	var orc *oracle.Oracle
	if spec.Assert.Oracle != nil {
		orc = oracle.New(oracle.Config{
			Machine:     core.MachineFor(p.plat, p.sys.Gamma()),
			Sys:         p.sys,
			Cutoff:      p.opts.Cutoff,
			UpdateEvery: p.opts.UpdateEvery,
			Servers:     spec.Fleet.Servers,
			Window:      spec.Assert.Oracle.Window,
		})
	}

	var latest *md.Checkpoint
	checkpoints := 0
	sink := func(cp *md.Checkpoint) error {
		latest = cp
		checkpoints++
		telemetry.Emit("scenario_checkpoint", telemetry.F{
			"scenario": spec.Name, "sweep": sweep, "step": cp.Step,
		})
		return nil
	}

	var result *md.Result
	var stats faultTotals
	resumedAt := 0
	if p.restartAt == 0 {
		leg := p.legSpec(p.opts, 0, spec.Fleet.Steps, sink)
		leg.Oracle = orc
		out, err := harness.Run(leg)
		if err != nil {
			rep.Err = fmt.Errorf("scenario %s sweep %d: %w", spec.Name, sweep, err)
			return rep
		}
		result = out.Result
		rep.Wall = out.Wall
		stats.add(out)
	} else {
		// Leg 1: run to the restart step, capturing checkpoints.
		first := p.legSpec(p.opts, 0, p.restartAt, sink)
		fo, err := harness.Run(first)
		if err != nil {
			rep.Err = fmt.Errorf("scenario %s sweep %d: first leg: %w", spec.Name, sweep, err)
			return rep
		}
		stats.add(fo)
		// Leg 2: resume from the latest checkpoint, or replay from the
		// start when none was captured before the kill.
		sys, opts := p.sys, p.opts
		if latest != nil {
			ropts, err := latest.Resume(p.opts)
			if err != nil {
				rep.Err = fmt.Errorf("scenario %s sweep %d: resuming: %w", spec.Name, sweep, err)
				return rep
			}
			opts = ropts
			sys = latest.Sys
			resumedAt = latest.Step
		}
		telemetry.Emit("scenario_restart", telemetry.F{
			"scenario": spec.Name, "sweep": sweep,
			"killed_at": p.restartAt, "resumed_at": resumedAt,
		})
		second := p.legSpec(opts, resumedAt, spec.Fleet.Steps-resumedAt, sink)
		second.Sys = sys
		so, err := harness.Run(second)
		if err != nil {
			rep.Err = fmt.Errorf("scenario %s sweep %d: resumed leg: %w", spec.Name, sweep, err)
			return rep
		}
		stats.add(so)
		stitched := *so.Result
		stitched.StartStep = 0
		stitched.Steps = append(append([]md.StepInfo(nil), fo.Result.Steps[:resumedAt]...), so.Result.Steps...)
		stitched.Recoveries += fo.Result.Recoveries
		stitched.RecoverySeconds += fo.Result.RecoverySeconds
		stitched.Respawns += fo.Result.Respawns
		stitched.RespawnSeconds += fo.Result.RespawnSeconds
		stitched.LoDMacroPhases += fo.Result.LoDMacroPhases
		stitched.LoDFallbackPhases += fo.Result.LoDFallbackPhases
		result = &stitched
		// The restarted run's makespan is the sum of both legs — the
		// price of the replayed window is part of what makespan_factor
		// bounds.
		rep.Wall = fo.Wall + so.Wall
	}

	rep.Steps = len(result.Steps)
	energies := make([]float64, len(result.Steps))
	for i, st := range result.Steps {
		energies[i] = st.ETotal
	}
	rep.EnergiesHash = archive.HashFloats(energies)
	rep.FinalEnergy = result.FinalEnergy()
	rep.Respawns = result.Respawns
	rep.Recoveries = result.Recoveries
	rep.Checkpoints = checkpoints
	rep.ResumedAt = resumedAt
	rep.Injected = stats.injected
	rep.LoDMacroPhases = result.LoDMacroPhases
	rep.LoDFallbackPhases = result.LoDFallbackPhases
	if orc != nil {
		rep.Anomalies = orc.Anomalies()
	}
	rep.Checks = evaluate(spec, p, result, &rep, ref, orc, resumedAt)

	ev := telemetry.F{
		"scenario": spec.Name, "sweep": sweep, "pass": rep.Passed(),
		"respawns": rep.Respawns, "checkpoints": rep.Checkpoints,
	}
	if fails := rep.Failures(); len(fails) > 0 {
		names := make([]string, len(fails))
		for i, c := range fails {
			names[i] = c.Name
		}
		ev["failed"] = names
	}
	telemetry.Emit("scenario_end", ev)
	return rep
}

// faultTotals accumulates injected-fault counts across legs.
type faultTotals struct {
	injected int
}

func (f *faultTotals) add(out harness.RunOutcome) {
	f.injected += out.FaultStats.Total()
}

// evaluate judges every asserted check against the stitched result.
func evaluate(spec *Spec, p *plan, res *md.Result, rep *Report, ref *harness.RunOutcome, orc *oracle.Oracle, resumedAt int) []Check {
	a := &spec.Assert
	var checks []Check
	add := func(name string, ok bool, format string, args ...any) {
		checks = append(checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	if a.EnergiesBitIdentical {
		ok, detail := samePhysics(ref.Result, res)
		add("energies_bit_identical", ok, "%s", detail)
	}
	if a.WallNotBelowReference {
		rep.RefWall = ref.Wall
		ok := rep.Wall >= ref.Wall-1e-12
		add("wall_not_below_reference", ok, "wall %.6g vs reference %.6g", rep.Wall, ref.Wall)
	}
	if a.MakespanFactor != nil {
		rep.RefWall = ref.Wall
		limit := *a.MakespanFactor * ref.Wall
		ok := rep.Wall <= limit+1e-12
		add("makespan_factor", ok, "wall %.6g vs limit %.6g (%.3gx reference %.6g)",
			rep.Wall, limit, *a.MakespanFactor, ref.Wall)
	}
	if a.FinalEnergyRelTol != nil {
		got, want := res.FinalEnergy(), ref.Result.FinalEnergy()
		rel := math.Abs(got-want) / math.Max(math.Abs(want), 1)
		add("final_energy_rel_tol", rel <= *a.FinalEnergyRelTol,
			"final energy %.12g vs reference %.12g (rel %.3g, tol %.3g)", got, want, rel, *a.FinalEnergyRelTol)
	}
	if a.RespawnsEqualKills {
		want := p.expectedRespawns(resumedAt)
		add("respawns_equal_kills", res.Respawns == want, "respawns %d, kills delivered %d", res.Respawns, want)
	}
	if a.Respawns != nil {
		add("respawns", res.Respawns == *a.Respawns, "respawns %d, want %d", res.Respawns, *a.Respawns)
	}
	if a.Recoveries != nil {
		add("recoveries", res.Recoveries == *a.Recoveries, "recoveries %d, want %d", res.Recoveries, *a.Recoveries)
	}
	if a.HealWithinSeconds != nil {
		ok := res.RespawnSeconds <= *a.HealWithinSeconds
		add("heal_within_seconds", ok, "respawn time %.6g s, budget %.6g s", res.RespawnSeconds, *a.HealWithinSeconds)
	}
	if a.CheckpointsMin != nil {
		add("checkpoints_min", rep.Checkpoints >= *a.CheckpointsMin,
			"checkpoints %d, want >= %d", rep.Checkpoints, *a.CheckpointsMin)
	}
	if a.Converged != nil {
		add("converged", res.Converged == *a.Converged, "converged %v, want %v", res.Converged, *a.Converged)
	}
	if a.LoDMacroMin != nil {
		add("lod_macro_min", res.LoDMacroPhases >= *a.LoDMacroMin,
			"macro phases %d, want >= %d", res.LoDMacroPhases, *a.LoDMacroMin)
	}
	if a.LoDMacroMax != nil {
		add("lod_macro_max", res.LoDMacroPhases <= *a.LoDMacroMax,
			"macro phases %d, want <= %d", res.LoDMacroPhases, *a.LoDMacroMax)
	}
	if a.LoDFallbackMin != nil {
		add("lod_fallback_min", res.LoDFallbackPhases >= *a.LoDFallbackMin,
			"fallback phases %d, want >= %d", res.LoDFallbackPhases, *a.LoDFallbackMin)
	}
	if a.LoDFallbackMax != nil {
		add("lod_fallback_max", res.LoDFallbackPhases <= *a.LoDFallbackMax,
			"fallback phases %d, want <= %d", res.LoDFallbackPhases, *a.LoDFallbackMax)
	}
	if a.Oracle != nil {
		anomalies := orc.Anomalies()
		add("oracle_anomaly", (anomalies > 0) == a.Oracle.Anomaly,
			"anomalies %d, want fired=%v", anomalies, a.Oracle.Anomaly)
		if a.Oracle.Anomaly && len(a.Oracle.Terms) > 0 {
			allowed := map[string]bool{}
			for _, t := range a.Oracle.Terms {
				allowed[t] = true
			}
			ok := true
			detail := "every anomaly attributed to an expected term"
			for term, n := range orc.AnomalyTerms() {
				if n > 0 && !allowed[term] {
					ok = false
					detail = fmt.Sprintf("anomaly attributed to unexpected term %q (%d times)", term, n)
					break
				}
			}
			add("oracle_terms", ok, "%s", detail)
		}
	}
	return checks
}

// samePhysics compares a run's trajectory bit-for-bit against the
// fault-free reference — the invariant the chaos suite pins: faults and
// heals stretch the clock, never the physics.
func samePhysics(base, got *md.Result) (bool, string) {
	if len(base.Steps) != len(got.Steps) {
		return false, fmt.Sprintf("step count %d, want %d", len(got.Steps), len(base.Steps))
	}
	for i := range base.Steps {
		if base.Steps[i] != got.Steps[i] {
			return false, fmt.Sprintf("step %d physics differ: got %+v, want %+v", i, got.Steps[i], base.Steps[i])
		}
	}
	if len(base.FinalPos) != len(got.FinalPos) {
		return false, fmt.Sprintf("FinalPos length %d, want %d", len(got.FinalPos), len(base.FinalPos))
	}
	for i := range base.FinalPos {
		if base.FinalPos[i] != got.FinalPos[i] {
			return false, fmt.Sprintf("FinalPos[%d] = %v, want %v", i, got.FinalPos[i], base.FinalPos[i])
		}
	}
	if math.IsNaN(got.FinalEnergy()) != math.IsNaN(base.FinalEnergy()) {
		return false, "final energy NaN mismatch"
	}
	return true, fmt.Sprintf("%d steps bit-identical", len(base.Steps))
}
