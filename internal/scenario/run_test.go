package scenario

import (
	"bytes"
	"strings"
	"testing"

	"opalperf/internal/telemetry"
)

// mustParse builds a spec from inline YAML.
func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// mustPass runs the scenario at sweep 0 and fails the test on any check.
func mustPass(t *testing.T, spec *Spec) Report {
	t.Helper()
	rep := RunScenario(spec, 0, nil)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	for _, c := range rep.Failures() {
		t.Errorf("%s: %s: %s", spec.Name, c.Name, c.Detail)
	}
	return rep
}

// TestEventSchedulingEdges drives the scheduling corners through the
// full engine: coincident events, kills of already-dead ranks, a
// checkpoint landing inside an active heal window.
func TestEventSchedulingEdges(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want func(t *testing.T, rep Report)
	}{
		{
			// Two kill events on the same step: one heal window, two
			// respawns, fleet back to full width.
			name: "two events same step",
			src: `
name: edge-same-step
fleet:
  servers: 3
  steps: 4
  scale: 0.02
options:
  cutoff: 10
  update_every: 2
  self_heal: true
events:
  - at: {step: 1}
    action: kill_server
    rank: 0
  - at: {step: 1}
    action: kill_server
    rank: 2
assert:
  energies_bit_identical: true
  respawns: 2
  respawns_equal_kills: true
`,
			want: func(t *testing.T, rep Report) {
				if rep.Respawns != 2 {
					t.Fatalf("respawns = %d, want 2", rep.Respawns)
				}
			},
		},
		{
			// Killing the same rank on consecutive steps kills the
			// freshly healed replacement — KillSchedule semantics: the
			// schedule total always equals the respawn count.
			name: "kill already-dead rank",
			src: `
name: edge-repeat-rank
fleet:
  servers: 2
  steps: 5
  scale: 0.02
options:
  cutoff: 10
  update_every: 1
  self_heal: true
events:
  - at: {step: 1}
    action: kill_server
    rank: 1
  - at: {step: 2}
    action: kill_server
    rank: 1
assert:
  energies_bit_identical: true
  respawns: 2
  respawns_equal_kills: true
`,
			want: func(t *testing.T, rep Report) {
				if rep.Respawns != 2 {
					t.Fatalf("replacement kill not delivered: respawns = %d, want 2", rep.Respawns)
				}
			},
		},
		{
			// A checkpoint requested for the kill step itself: the heal
			// window resolves first, the capture lands on the next update
			// boundary, and resuming it is still bit-exact (the restart
			// leg of the corpus pins that; here the capture must simply
			// happen exactly once).
			name: "checkpoint during heal window",
			src: `
name: edge-ckpt-in-heal
fleet:
  servers: 2
  steps: 6
  scale: 0.02
options:
  cutoff: 10
  update_every: 2
  self_heal: true
events:
  - at: {step: 2}
    action: kill_server
    rank: 0
  - at: {step: 2}
    action: checkpoint
assert:
  energies_bit_identical: true
  respawns: 1
  checkpoints_min: 1
`,
			want: func(t *testing.T, rep Report) {
				if rep.Checkpoints != 1 {
					t.Fatalf("checkpoints = %d, want exactly 1", rep.Checkpoints)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustPass(t, mustParse(t, tc.src))
			tc.want(t, rep)
		})
	}
}

// TestZeroStepScenarioRejected pins the remaining scheduling edge: a
// scenario with no steps cannot host assertions and must be rejected at
// validation, not crash at run time.
func TestZeroStepScenarioRejected(t *testing.T) {
	_, err := Parse([]byte(`
name: zero
fleet:
  servers: 2
  steps: 0
assert:
  energies_bit_identical: true
`))
	if err == nil || !strings.Contains(err.Error(), "steps must be positive") {
		t.Fatalf("zero-step scenario not rejected: %v", err)
	}
}

// TestSweepReseedsSchedules pins the sweep contract: sweep index i
// offsets the kill seed, so different sweeps see different schedules
// while each still heals completely.
func TestSweepReseedsSchedules(t *testing.T) {
	spec := mustParse(t, `
name: sweep-reseed
fleet:
  servers: 2
  steps: 8
  scale: 0.02
options:
  cutoff: 10
  update_every: 2
  self_heal: true
kills:
  seed: 0
  rate: 0.12
assert:
  energies_bit_identical: true
  respawns_equal_kills: true
`)
	reports := Sweep(spec, 6, 2)
	if len(reports) != 6 {
		t.Fatalf("got %d reports", len(reports))
	}
	respawns := map[int]bool{}
	total := 0
	for i, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("sweep %d: %v", i, rep.Err)
		}
		if rep.Sweep != i {
			t.Fatalf("report %d carries sweep %d", i, rep.Sweep)
		}
		if !rep.Passed() {
			t.Fatalf("sweep %d failed: %+v", i, rep.Failures())
		}
		respawns[rep.Respawns] = true
		total += rep.Respawns
	}
	if total == 0 {
		t.Fatal("no sweep killed anything; the reseeding is not exercising respawns")
	}
	if len(respawns) < 2 {
		t.Fatalf("every sweep produced the same respawn count %v; seeds are not being offset", respawns)
	}
}

// TestRestartReplaysDeterministically pins the two-leg orchestration: a
// restart with a checkpoint resumes mid-run, replays the window between
// checkpoint and kill (re-delivering its kills), and stitches a
// bit-identical trajectory.
func TestRestartReplaysDeterministically(t *testing.T) {
	spec := mustParse(t, `
name: edge-restart
fleet:
  servers: 2
  steps: 8
  scale: 0.02
options:
  cutoff: 10
  update_every: 2
  checkpoint_every: 2
  self_heal: true
events:
  - at: {step: 3}
    action: kill_server
    rank: 0
  - at: {step: 5}
    action: restart
assert:
  energies_bit_identical: true
  respawns_equal_kills: true
  checkpoints_min: 1
`)
	rep := mustPass(t, spec)
	if rep.ResumedAt != 4 {
		t.Fatalf("resumed at %d, want 4 (latest boundary before the kill at 5)", rep.ResumedAt)
	}
	if rep.Steps != 8 {
		t.Fatalf("stitched %d steps, want 8", rep.Steps)
	}
	// The kill at step 3 lies before the resume point, so it is NOT
	// replayed; respawns_equal_kills already verified the accounting.
	if rep.Respawns != 1 {
		t.Fatalf("respawns = %d, want 1", rep.Respawns)
	}
}

// TestScenarioJournalCarriesID pins the telemetry satellite: scenario
// runs stamp their journal events with the scenario name, and the
// lifecycle events frame the run.
func TestScenarioJournalCarriesID(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	var buf bytes.Buffer
	telemetry.StartJournal(&buf, 64)
	defer telemetry.StopJournal()

	spec := mustParse(t, `
name: journal-id
fleet:
  servers: 2
  steps: 2
  scale: 0.02
options:
  cutoff: 10
`)
	if rep := RunScenario(spec, 0, nil); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	out := buf.String()
	for _, want := range []string{
		`"type":"scenario_start","scenario":"journal-id"`,
		`"type":"scenario_end"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("journal missing %s:\n%s", want, out)
		}
	}
}
