// Package scenario is the declarative chaos layer: YAML scenario files
// describing a fleet, timed events (kills, fault windows, checkpoints,
// restarts) and assertions (bit-identical energies, oracle anomalies,
// heal budgets, LoD fallback counts, makespan tolerances), compiled onto
// the existing md.Options / fault.KillSchedule / supervise / oracle / LoD
// wiring and swept over seeds.  The design follows Cornebize & Legrand
// ("Variability Matters"): the operating conditions a performance model
// is trusted under must be enumerable, reviewable inputs — a checked-in
// corpus — not whatever ad-hoc flags someone remembered to script.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"opalperf/internal/md"
	"opalperf/internal/pairlist"
	"opalperf/internal/platform"
)

// Spec is one declarative scenario.
type Spec struct {
	Name        string
	Description string
	Fleet       Fleet
	Options     OptionsSpec
	Faults      *FaultSpec
	Kills       *KillsSpec
	Events      []Event
	Assert      Assertions

	// File is the path the spec was loaded from ("" for inline specs).
	File string
}

// Fleet is the run's shape: platform, problem and fleet width.
type Fleet struct {
	Platform string  // platform key (default "j90")
	Size     string  // small | medium | large (default "small")
	Scale    float64 // problem scale factor (default 1.0; corpus uses 0.02)
	Servers  int     // computation servers (0 = serial engine)
	Steps    int     // simulation steps (must be positive)
}

// OptionsSpec is the declarative surface of md.Options.
type OptionsSpec struct {
	Cutoff          float64 // default 60 (the paper's ineffective cut-off)
	UpdateEvery     int     // default 1
	Accounting      bool
	Minimize        bool // default true
	SelfHeal        bool
	FaultTolerant   bool
	MaxRespawns     int
	Seed            int64
	Strategy        string // lcg | round-robin | folded (default lcg)
	CellList        bool
	LoD             string // "" | off | auto | on ("" consults OPAL_LOD)
	CheckpointEvery int
	InitTemperature float64
	Thermostat      float64
	Dt              float64
}

// FaultSpec parameterizes the run-wide seeded fault plane.  Rate is the
// uniform shorthand (every kind at the same rate); the per-kind rates
// override it individually.
type FaultSpec struct {
	Seed          uint64
	Rate          float64
	DropRate      *float64
	DupRate       *float64
	DelayRate     *float64
	CrashRate     *float64
	StragglerRate *float64
}

// KillsSpec draws a seeded administrative kill schedule over
// steps x servers (fault.Kills): before each step every rank dies
// independently with probability Rate.  Sweep seeds offset Seed.
type KillsSpec struct {
	Seed uint64
	Rate float64
}

// At pins an event to a simulation step.
type At struct {
	Step int
}

// Event is one timed scenario event.
type Event struct {
	At     At
	Action string // kill_server | inject_fault | checkpoint | restart
	// Rank is the victim server for kill_server.
	Rank int
	// Rate/Seed/Until parameterize inject_fault: a uniform fault plane
	// active in the step window [At.Step, Until.Step) — or to the end of
	// the run when Until is nil.
	Rate  float64
	Seed  uint64
	Until *At
}

// OracleAssert arms the model-in-the-loop oracle and asserts on its
// verdict.
type OracleAssert struct {
	// Anomaly asserts whether at least one anomaly fires.
	Anomaly bool
	// Terms, when non-empty with Anomaly, asserts every flagged anomaly
	// is attributed to one of these model terms (par, seq, comm, sync).
	Terms []string
	// Window is the oracle evaluation window in steps (default 2).
	Window int
}

// Assertions is the declarative check vocabulary.  Nil pointers mean
// "not asserted".
type Assertions struct {
	// EnergiesBitIdentical compares every step's physics and the final
	// coordinates against a fault-free reference run of the same fleet
	// (events, faults, kills and checkpointing stripped).
	EnergiesBitIdentical bool
	// WallNotBelowReference asserts the run's virtual makespan is no
	// smaller than the fault-free reference's (faults only stretch).
	WallNotBelowReference bool
	// MakespanFactor asserts wall <= factor * reference wall.
	MakespanFactor *float64
	// FinalEnergyRelTol asserts the final total energy agrees with the
	// fault-free reference within this relative tolerance — the check for
	// runs where graceful degradation regroups the floating-point partial
	// sums and bit-identity cannot hold.
	FinalEnergyRelTol *float64
	// RespawnsEqualKills asserts Result.Respawns equals the total kills
	// the schedule and kill_server events deliver (restart legs re-kill
	// replayed steps; the expectation accounts for that).
	RespawnsEqualKills bool
	// Respawns / Recoveries assert exact counter values.
	Respawns   *int
	Recoveries *int
	// HealWithinSeconds bounds Result.RespawnSeconds (virtual seconds).
	HealWithinSeconds *float64
	// CheckpointsMin asserts at least this many checkpoints were
	// captured.
	CheckpointsMin *int
	// Converged asserts the minimizer's convergence flag.
	Converged *bool
	// LoD phase-count bounds (per-connection counters, summed over
	// restart legs).
	LoDMacroMin    *int
	LoDMacroMax    *int
	LoDFallbackMin *int
	LoDFallbackMax *int
	// Oracle arms the model oracle and asserts on anomalies.
	Oracle *OracleAssert
}

// Actions and term names the schema accepts.
const (
	ActKillServer  = "kill_server"
	ActInjectFault = "inject_fault"
	ActCheckpoint  = "checkpoint"
	ActRestart     = "restart"
)

var validTerms = map[string]bool{"par": true, "seq": true, "comm": true, "sync": true}

// Parse decodes one scenario document and validates it.
func Parse(src []byte) (*Spec, error) {
	tree, err := ParseYAML(src)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	spec, err := decodeSpec(tree)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return spec, nil
}

// Load reads and parses one scenario file.
func Load(path string) (*Spec, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	spec, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	spec.File = path
	return spec, nil
}

// LoadDir loads every *.yaml/*.yml file under dir (non-recursive),
// sorted by file name.  Scenario names must be unique across the set.
func LoadDir(dir string) ([]*Spec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var specs []*Spec
	seen := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		if ext != ".yaml" && ext != ".yml" {
			continue
		}
		spec, err := Load(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[spec.Name]; dup {
			return nil, fmt.Errorf("scenario: duplicate scenario name %q (%s and %s)", spec.Name, prev, spec.File)
		}
		seen[spec.Name] = spec.File
		specs = append(specs, spec)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].File < specs[j].File })
	return specs, nil
}

// ---- strict decoding -------------------------------------------------

// dec tracks the decode position for error messages and rejects unknown
// keys — an unrecognized assertion silently dropped would be a test that
// always passes.
type dec struct {
	path []string
}

func (d *dec) at(key string) string {
	if len(d.path) == 0 {
		return key
	}
	return strings.Join(d.path, ".") + "." + key
}

func (d *dec) push(key string) { d.path = append(d.path, key) }
func (d *dec) pop()            { d.path = d.path[:len(d.path)-1] }

func (d *dec) errf(format string, args ...any) error {
	prefix := strings.Join(d.path, ".")
	if prefix != "" {
		prefix += ": "
	}
	return fmt.Errorf("%s%s", prefix, fmt.Sprintf(format, args...))
}

// mapNode asserts v is a mapping and returns it with its sorted keys.
func (d *dec) mapNode(v any) (map[string]any, []string, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, nil, d.errf("expected a mapping, got %s", typeName(v))
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return m, keys, nil
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case map[string]any:
		return "a mapping"
	case []any:
		return "a sequence"
	case string:
		return "a string"
	case bool:
		return "a boolean"
	case int64:
		return "an integer"
	case float64:
		return "a float"
	}
	return fmt.Sprintf("%T", v)
}

func (d *dec) str(key string, v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", d.errf("%s: expected a string, got %s", key, typeName(v))
	}
	return s, nil
}

func (d *dec) boolean(key string, v any) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, d.errf("%s: expected a boolean, got %s", key, typeName(v))
	}
	return b, nil
}

func (d *dec) integer(key string, v any) (int, error) {
	n, ok := v.(int64)
	if !ok {
		return 0, d.errf("%s: expected an integer, got %s", key, typeName(v))
	}
	if n > int64(int(^uint(0)>>1)) || n < -int64(int(^uint(0)>>1))-1 {
		return 0, d.errf("%s: integer %d out of range", key, n)
	}
	return int(n), nil
}

func (d *dec) unsigned(key string, v any) (uint64, error) {
	n, ok := v.(int64)
	if !ok || n < 0 {
		return 0, d.errf("%s: expected a non-negative integer, got %v", key, v)
	}
	return uint64(n), nil
}

func (d *dec) float(key string, v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case int64:
		return float64(x), nil
	}
	return 0, d.errf("%s: expected a number, got %s", key, typeName(v))
}

func (d *dec) rate(key string, v any) (float64, error) {
	f, err := d.float(key, v)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, d.errf("%s: rate %v outside [0, 1]", key, f)
	}
	return f, nil
}

func (d *dec) atNode(key string, v any) (At, error) {
	d.push(key)
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return At{}, err
	}
	var at At
	var hasStep bool
	for _, k := range keys {
		switch k {
		case "step":
			at.Step, err = d.integer(k, m[k])
			if err != nil {
				return At{}, err
			}
			hasStep = true
		default:
			return At{}, d.errf("unknown key %q (want step)", k)
		}
	}
	if !hasStep {
		return At{}, d.errf("missing step")
	}
	return at, nil
}

func decodeSpec(tree any) (*Spec, error) {
	d := &dec{}
	root, keys, err := d.mapNode(tree)
	if err != nil {
		return nil, err
	}
	spec := &Spec{
		Fleet:   Fleet{Platform: "j90", Size: "small", Scale: 1.0},
		Options: OptionsSpec{Cutoff: 60, UpdateEvery: 1, Minimize: true, Strategy: "lcg"},
	}
	for _, k := range keys {
		v := root[k]
		switch k {
		case "name":
			if spec.Name, err = d.str(k, v); err != nil {
				return nil, err
			}
		case "description":
			if spec.Description, err = d.str(k, v); err != nil {
				return nil, err
			}
		case "fleet":
			if err = d.decodeFleet(v, &spec.Fleet); err != nil {
				return nil, err
			}
		case "options":
			if err = d.decodeOptions(v, &spec.Options); err != nil {
				return nil, err
			}
		case "faults":
			spec.Faults = &FaultSpec{}
			if err = d.decodeFaults(v, spec.Faults); err != nil {
				return nil, err
			}
		case "kills":
			spec.Kills = &KillsSpec{}
			if err = d.decodeKills(v, spec.Kills); err != nil {
				return nil, err
			}
		case "events":
			if spec.Events, err = d.decodeEvents(v); err != nil {
				return nil, err
			}
		case "assert":
			if err = d.decodeAssert(v, &spec.Assert); err != nil {
				return nil, err
			}
		default:
			return nil, d.errf("unknown key %q", k)
		}
	}
	return spec, nil
}

func (d *dec) decodeFleet(v any, f *Fleet) error {
	d.push("fleet")
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return err
	}
	for _, k := range keys {
		switch k {
		case "platform":
			f.Platform, err = d.str(k, m[k])
		case "size":
			f.Size, err = d.str(k, m[k])
		case "scale":
			f.Scale, err = d.float(k, m[k])
		case "servers":
			f.Servers, err = d.integer(k, m[k])
		case "steps":
			f.Steps, err = d.integer(k, m[k])
		default:
			err = d.errf("unknown key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) decodeOptions(v any, o *OptionsSpec) error {
	d.push("options")
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return err
	}
	for _, k := range keys {
		switch k {
		case "cutoff":
			o.Cutoff, err = d.float(k, m[k])
		case "update_every":
			o.UpdateEvery, err = d.integer(k, m[k])
		case "accounting":
			o.Accounting, err = d.boolean(k, m[k])
		case "minimize":
			o.Minimize, err = d.boolean(k, m[k])
		case "self_heal":
			o.SelfHeal, err = d.boolean(k, m[k])
		case "fault_tolerant":
			o.FaultTolerant, err = d.boolean(k, m[k])
		case "max_respawns":
			o.MaxRespawns, err = d.integer(k, m[k])
		case "seed":
			var n int
			n, err = d.integer(k, m[k])
			o.Seed = int64(n)
		case "strategy":
			o.Strategy, err = d.str(k, m[k])
		case "cell_list":
			o.CellList, err = d.boolean(k, m[k])
		case "lod":
			o.LoD, err = d.str(k, m[k])
		case "checkpoint_every":
			o.CheckpointEvery, err = d.integer(k, m[k])
		case "init_temperature":
			o.InitTemperature, err = d.float(k, m[k])
		case "thermostat":
			o.Thermostat, err = d.float(k, m[k])
		case "dt":
			o.Dt, err = d.float(k, m[k])
		default:
			err = d.errf("unknown key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) decodeFaults(v any, f *FaultSpec) error {
	d.push("faults")
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return err
	}
	setRate := func(k string, dst **float64) error {
		r, err := d.rate(k, m[k])
		if err != nil {
			return err
		}
		*dst = &r
		return nil
	}
	for _, k := range keys {
		switch k {
		case "seed":
			f.Seed, err = d.unsigned(k, m[k])
		case "rate":
			f.Rate, err = d.rate(k, m[k])
		case "drop_rate":
			err = setRate(k, &f.DropRate)
		case "dup_rate":
			err = setRate(k, &f.DupRate)
		case "delay_rate":
			err = setRate(k, &f.DelayRate)
		case "crash_rate":
			err = setRate(k, &f.CrashRate)
		case "straggler_rate":
			err = setRate(k, &f.StragglerRate)
		default:
			err = d.errf("unknown key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) decodeKills(v any, ks *KillsSpec) error {
	d.push("kills")
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return err
	}
	for _, k := range keys {
		switch k {
		case "seed":
			ks.Seed, err = d.unsigned(k, m[k])
		case "rate":
			ks.Rate, err = d.rate(k, m[k])
		default:
			err = d.errf("unknown key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) decodeEvents(v any) ([]Event, error) {
	d.push("events")
	defer d.pop()
	seq, ok := v.([]any)
	if !ok {
		return nil, d.errf("expected a sequence, got %s", typeName(v))
	}
	var events []Event
	for i, item := range seq {
		d.push(fmt.Sprintf("[%d]", i))
		ev, err := d.decodeEvent(item)
		d.pop()
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return events, nil
}

func (d *dec) decodeEvent(v any) (Event, error) {
	m, keys, err := d.mapNode(v)
	if err != nil {
		return Event{}, err
	}
	var ev Event
	var hasAt, hasRank bool
	extra := map[string]bool{}
	for _, k := range keys {
		switch k {
		case "at":
			if ev.At, err = d.atNode(k, m[k]); err != nil {
				return Event{}, err
			}
			hasAt = true
		case "action":
			if ev.Action, err = d.str(k, m[k]); err != nil {
				return Event{}, err
			}
		case "rank":
			if ev.Rank, err = d.integer(k, m[k]); err != nil {
				return Event{}, err
			}
			hasRank, extra[k] = true, true
		case "rate":
			if ev.Rate, err = d.rate(k, m[k]); err != nil {
				return Event{}, err
			}
			extra[k] = true
		case "seed":
			if ev.Seed, err = d.unsigned(k, m[k]); err != nil {
				return Event{}, err
			}
			extra[k] = true
		case "until":
			at, err := d.atNode(k, m[k])
			if err != nil {
				return Event{}, err
			}
			ev.Until = &at
			extra[k] = true
		default:
			return Event{}, d.errf("unknown key %q", k)
		}
	}
	if !hasAt {
		return Event{}, d.errf("missing at: {step: N}")
	}
	allowed := map[string][]string{
		ActKillServer:  {"rank"},
		ActInjectFault: {"rate", "seed", "until"},
		ActCheckpoint:  {},
		ActRestart:     {},
	}
	fields, ok := allowed[ev.Action]
	if !ok {
		return Event{}, d.errf("unknown action %q (want kill_server, inject_fault, checkpoint or restart)", ev.Action)
	}
	for _, f := range fields {
		delete(extra, f)
	}
	for k := range extra {
		return Event{}, d.errf("key %q does not apply to action %q", k, ev.Action)
	}
	if ev.Action == ActKillServer && !hasRank {
		return Event{}, d.errf("kill_server needs a rank")
	}
	return ev, nil
}

func (d *dec) decodeAssert(v any, a *Assertions) error {
	d.push("assert")
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return err
	}
	intPtr := func(k string) (*int, error) {
		n, err := d.integer(k, m[k])
		if err != nil {
			return nil, err
		}
		return &n, nil
	}
	for _, k := range keys {
		switch k {
		case "energies_bit_identical":
			a.EnergiesBitIdentical, err = d.boolean(k, m[k])
		case "wall_not_below_reference":
			a.WallNotBelowReference, err = d.boolean(k, m[k])
		case "makespan_factor":
			var f float64
			if f, err = d.float(k, m[k]); err == nil {
				a.MakespanFactor = &f
			}
		case "final_energy_rel_tol":
			var f float64
			if f, err = d.float(k, m[k]); err == nil {
				a.FinalEnergyRelTol = &f
			}
		case "respawns_equal_kills":
			a.RespawnsEqualKills, err = d.boolean(k, m[k])
		case "respawns":
			a.Respawns, err = intPtr(k)
		case "recoveries":
			a.Recoveries, err = intPtr(k)
		case "heal_within_seconds":
			var f float64
			if f, err = d.float(k, m[k]); err == nil {
				a.HealWithinSeconds = &f
			}
		case "checkpoints_min":
			a.CheckpointsMin, err = intPtr(k)
		case "converged":
			var b bool
			if b, err = d.boolean(k, m[k]); err == nil {
				a.Converged = &b
			}
		case "lod_macro_min":
			a.LoDMacroMin, err = intPtr(k)
		case "lod_macro_max":
			a.LoDMacroMax, err = intPtr(k)
		case "lod_fallback_min":
			a.LoDFallbackMin, err = intPtr(k)
		case "lod_fallback_max":
			a.LoDFallbackMax, err = intPtr(k)
		case "oracle":
			a.Oracle = &OracleAssert{Window: 2}
			err = d.decodeOracle(m[k], a.Oracle)
		default:
			err = d.errf("unknown key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (d *dec) decodeOracle(v any, o *OracleAssert) error {
	d.push("oracle")
	defer d.pop()
	m, keys, err := d.mapNode(v)
	if err != nil {
		return err
	}
	for _, k := range keys {
		switch k {
		case "anomaly":
			o.Anomaly, err = d.boolean(k, m[k])
		case "terms":
			seq, ok := m[k].([]any)
			if !ok {
				return d.errf("%s: expected a sequence, got %s", k, typeName(m[k]))
			}
			for _, item := range seq {
				s, ok := item.(string)
				if !ok {
					return d.errf("%s: expected term names, got %s", k, typeName(item))
				}
				o.Terms = append(o.Terms, s)
			}
		case "window":
			o.Window, err = d.integer(k, m[k])
		default:
			err = d.errf("unknown key %q", k)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- validation ------------------------------------------------------

// Validate checks the spec's internal consistency: ranges, event
// ordering, option compatibility, assertion applicability.  It returns
// the first violation.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("missing name")
	}
	for _, r := range s.Name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return fmt.Errorf("name %q: want lower-case letters, digits and dashes", s.Name)
		}
	}
	f := &s.Fleet
	if _, err := platform.ByName(f.Platform); err != nil {
		return fmt.Errorf("fleet.platform: %w", err)
	}
	switch f.Size {
	case "small", "medium", "large":
	default:
		return fmt.Errorf("fleet.size %q: want small, medium or large", f.Size)
	}
	if f.Scale <= 0 {
		return fmt.Errorf("fleet.scale must be positive, have %v", f.Scale)
	}
	if f.Servers < 0 {
		return fmt.Errorf("fleet.servers must be non-negative, have %d", f.Servers)
	}
	if f.Steps <= 0 {
		return fmt.Errorf("fleet.steps must be positive, have %d", f.Steps)
	}
	o := &s.Options
	if o.UpdateEvery < 1 {
		return fmt.Errorf("options.update_every must be >= 1, have %d", o.UpdateEvery)
	}
	if o.Cutoff <= 0 {
		return fmt.Errorf("options.cutoff must be positive, have %v", o.Cutoff)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("options.checkpoint_every must be non-negative, have %d", o.CheckpointEvery)
	}
	if o.MaxRespawns < 0 {
		return fmt.Errorf("options.max_respawns must be non-negative, have %d", o.MaxRespawns)
	}
	if _, err := pairlist.ParseStrategy(o.Strategy); err != nil {
		return fmt.Errorf("options.strategy: %w", err)
	}
	if _, err := md.ParseLoDMode(o.LoD); err != nil {
		return fmt.Errorf("options.lod: %w", err)
	}
	if o.Accounting && (o.SelfHeal || o.FaultTolerant) {
		return fmt.Errorf("options.accounting is incompatible with self_heal/fault_tolerant (heal-time calls bypass the phase barriers)")
	}
	if s.Kills != nil {
		if s.Kills.Rate <= 0 {
			return fmt.Errorf("kills.rate must be positive, have %v", s.Kills.Rate)
		}
		if !o.SelfHeal {
			return fmt.Errorf("kills needs options.self_heal: the administrative schedule is consumed by the self-healing supervisor")
		}
		if f.Servers <= 0 {
			return fmt.Errorf("kills needs a parallel fleet (fleet.servers > 0)")
		}
	}

	restarts := 0
	var injectRate float64
	var injectSeed uint64
	injectSeen := false
	for i, ev := range s.Events {
		where := fmt.Sprintf("events[%d] (%s)", i, ev.Action)
		switch ev.Action {
		case ActKillServer:
			if !o.SelfHeal {
				return fmt.Errorf("%s: needs options.self_heal", where)
			}
			if f.Servers <= 0 {
				return fmt.Errorf("%s: needs a parallel fleet (fleet.servers > 0)", where)
			}
			if ev.Rank < 0 || ev.Rank >= f.Servers {
				return fmt.Errorf("%s: rank %d outside the fleet [0, %d)", where, ev.Rank, f.Servers)
			}
			if ev.At.Step < 0 || ev.At.Step >= f.Steps {
				return fmt.Errorf("%s: step %d outside the run [0, %d)", where, ev.At.Step, f.Steps)
			}
		case ActInjectFault:
			if ev.Rate <= 0 {
				return fmt.Errorf("%s: needs a positive rate", where)
			}
			if ev.At.Step < 0 || ev.At.Step >= f.Steps {
				return fmt.Errorf("%s: step %d outside the run [0, %d)", where, ev.At.Step, f.Steps)
			}
			if ev.Until != nil && ev.Until.Step <= ev.At.Step {
				return fmt.Errorf("%s: until step %d not after start step %d", where, ev.Until.Step, ev.At.Step)
			}
			if s.Faults != nil {
				return fmt.Errorf("%s: conflicts with the run-wide faults block — one fault plane per run", where)
			}
			if injectSeen && (ev.Rate != injectRate || ev.Seed != injectSeed) {
				return fmt.Errorf("%s: all inject_fault windows share one plane; rate/seed must match the first window", where)
			}
			injectRate, injectSeed, injectSeen = ev.Rate, ev.Seed, true
		case ActCheckpoint:
			if ev.At.Step < 1 || ev.At.Step > f.Steps {
				return fmt.Errorf("%s: step %d outside [1, %d] (a checkpoint lands after a completed step)", where, ev.At.Step, f.Steps)
			}
		case ActRestart:
			restarts++
			if restarts > 1 {
				return fmt.Errorf("%s: at most one restart event per scenario", where)
			}
			if ev.At.Step < 1 || ev.At.Step >= f.Steps {
				return fmt.Errorf("%s: step %d outside [1, %d) — the restarted leg needs steps left to run", where, ev.At.Step, f.Steps)
			}
		default:
			return fmt.Errorf("%s: unknown action", where)
		}
		if ev.Action != ActKillServer && ev.Action != ActInjectFault && f.Servers <= 0 && ev.Action == ActKillServer {
			return fmt.Errorf("%s: needs a parallel fleet", where)
		}
	}

	a := &s.Assert
	if a.MakespanFactor != nil && *a.MakespanFactor <= 0 {
		return fmt.Errorf("assert.makespan_factor must be positive, have %v", *a.MakespanFactor)
	}
	if a.FinalEnergyRelTol != nil && *a.FinalEnergyRelTol <= 0 {
		return fmt.Errorf("assert.final_energy_rel_tol must be positive, have %v", *a.FinalEnergyRelTol)
	}
	if a.HealWithinSeconds != nil && *a.HealWithinSeconds <= 0 {
		return fmt.Errorf("assert.heal_within_seconds must be positive, have %v", *a.HealWithinSeconds)
	}
	for _, p := range []struct {
		name string
		v    *int
	}{
		{"respawns", a.Respawns}, {"recoveries", a.Recoveries},
		{"checkpoints_min", a.CheckpointsMin},
		{"lod_macro_min", a.LoDMacroMin}, {"lod_macro_max", a.LoDMacroMax},
		{"lod_fallback_min", a.LoDFallbackMin}, {"lod_fallback_max", a.LoDFallbackMax},
	} {
		if p.v != nil && *p.v < 0 {
			return fmt.Errorf("assert.%s must be non-negative, have %d", p.name, *p.v)
		}
	}
	if a.Oracle != nil {
		if f.Servers <= 0 {
			return fmt.Errorf("assert.oracle needs a parallel fleet: the model predicts the client/server decomposition")
		}
		if restarts > 0 {
			return fmt.Errorf("assert.oracle is incompatible with a restart event (windows do not span legs)")
		}
		if a.Oracle.Window < 1 {
			return fmt.Errorf("assert.oracle.window must be >= 1, have %d", a.Oracle.Window)
		}
		for _, t := range a.Oracle.Terms {
			if !validTerms[t] {
				return fmt.Errorf("assert.oracle.terms: unknown model term %q (want par, seq, comm or sync)", t)
			}
		}
	}
	if (a.RespawnsEqualKills || a.Respawns != nil || a.HealWithinSeconds != nil) && !o.SelfHeal &&
		(s.Kills != nil || hasAction(s.Events, ActKillServer)) {
		return fmt.Errorf("respawn assertions need options.self_heal")
	}
	if a.CheckpointsMin != nil && o.CheckpointEvery == 0 && !hasAction(s.Events, ActCheckpoint) {
		return fmt.Errorf("assert.checkpoints_min needs checkpoint events or options.checkpoint_every")
	}
	if f.Servers <= 0 {
		for _, name := range []struct {
			set  bool
			what string
		}{
			{o.SelfHeal, "options.self_heal"},
			{o.FaultTolerant, "options.fault_tolerant"},
			{a.LoDMacroMin != nil || a.LoDFallbackMin != nil, "LoD assertions"},
		} {
			if name.set {
				return fmt.Errorf("%s needs a parallel fleet (fleet.servers > 0)", name.what)
			}
		}
	}
	return nil
}

func hasAction(events []Event, action string) bool {
	for _, ev := range events {
		if ev.Action == action {
			return true
		}
	}
	return false
}

// Summary renders a one-line description of the scenario's moving parts
// for `scenario list`.
func (s *Spec) Summary() string {
	var parts []string
	if s.Faults != nil {
		parts = append(parts, "faults")
	}
	if s.Kills != nil {
		parts = append(parts, "kill-sweep")
	}
	counts := map[string]int{}
	for _, ev := range s.Events {
		counts[ev.Action]++
	}
	for _, a := range []string{ActKillServer, ActInjectFault, ActCheckpoint, ActRestart} {
		if counts[a] > 0 {
			parts = append(parts, fmt.Sprintf("%s x%d", a, counts[a]))
		}
	}
	if len(parts) == 0 {
		return "fault-free"
	}
	return strings.Join(parts, ", ")
}

// AssertNames lists the asserted checks in a stable order, for listings.
func (s *Spec) AssertNames() []string {
	a := &s.Assert
	var names []string
	add := func(cond bool, name string) {
		if cond {
			names = append(names, name)
		}
	}
	add(a.EnergiesBitIdentical, "energies_bit_identical")
	add(a.WallNotBelowReference, "wall_not_below_reference")
	add(a.MakespanFactor != nil, "makespan_factor")
	add(a.FinalEnergyRelTol != nil, "final_energy_rel_tol")
	add(a.RespawnsEqualKills, "respawns_equal_kills")
	add(a.Respawns != nil, "respawns")
	add(a.Recoveries != nil, "recoveries")
	add(a.HealWithinSeconds != nil, "heal_within_seconds")
	add(a.CheckpointsMin != nil, "checkpoints_min")
	add(a.Converged != nil, "converged")
	add(a.LoDMacroMin != nil, "lod_macro_min")
	add(a.LoDMacroMax != nil, "lod_macro_max")
	add(a.LoDFallbackMin != nil, "lod_fallback_min")
	add(a.LoDFallbackMax != nil, "lod_fallback_max")
	add(a.Oracle != nil, "oracle")
	return names
}
