package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// minimalSpec is the smallest valid scenario document.
const minimalSpec = `
name: minimal
fleet:
  servers: 2
  steps: 2
`

func TestParseMinimal(t *testing.T) {
	spec, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "minimal" {
		t.Fatalf("name = %q", spec.Name)
	}
	// Defaults.
	if spec.Fleet.Platform != "j90" || spec.Fleet.Size != "small" || spec.Fleet.Scale != 1.0 {
		t.Fatalf("fleet defaults wrong: %+v", spec.Fleet)
	}
	if spec.Options.Cutoff != 60 || spec.Options.UpdateEvery != 1 || !spec.Options.Minimize {
		t.Fatalf("option defaults wrong: %+v", spec.Options)
	}
}

func TestParseFullDocument(t *testing.T) {
	src := `
name: full
description: every block at once
fleet:
  platform: j90
  size: small
  scale: 0.02
  servers: 3
  steps: 8
options:
  cutoff: 10
  update_every: 2
  self_heal: true
  max_respawns: 5
  lod: auto
kills:
  seed: 4
  rate: 0.1
events:
  - at: {step: 1}
    action: kill_server
    rank: 2
  - at: {step: 3}
    action: checkpoint
assert:
  energies_bit_identical: true
  respawns_equal_kills: true
  heal_within_seconds: 0.5
  lod_macro_min: 1
`
	spec, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kills == nil || spec.Kills.Seed != 4 || spec.Kills.Rate != 0.1 {
		t.Fatalf("kills block: %+v", spec.Kills)
	}
	if len(spec.Events) != 2 || spec.Events[0].Rank != 2 || spec.Events[1].Action != ActCheckpoint {
		t.Fatalf("events: %+v", spec.Events)
	}
	if spec.Assert.HealWithinSeconds == nil || *spec.Assert.HealWithinSeconds != 0.5 {
		t.Fatalf("assert: %+v", spec.Assert)
	}
	if got := spec.AssertNames(); strings.Join(got, ",") !=
		"energies_bit_identical,respawns_equal_kills,heal_within_seconds,lod_macro_min" {
		t.Fatalf("AssertNames: %v", got)
	}
}

// TestParseRejects pins the strict-decode and validation vocabulary: an
// unknown key, bad duration or out-of-range rank must fail loudly, never
// decay into a scenario that silently asserts nothing.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown top key", "name: x\nbogus: 1\nfleet:\n  servers: 1\n  steps: 1", `unknown key "bogus"`},
		{"unknown fleet key", "name: x\nfleet:\n  nodes: 2\n  steps: 1", `fleet: unknown key "nodes"`},
		{"unknown assert key", "name: x\nfleet:\n  servers: 1\n  steps: 1\nassert:\n  energies: true", `assert: unknown key "energies"`},
		{"zero steps", "name: x\nfleet:\n  servers: 1\n  steps: 0", "steps must be positive"},
		{"negative steps", "name: x\nfleet:\n  servers: 1\n  steps: -2", "steps must be positive"},
		{"bad name", "name: Bad_Name\nfleet:\n  servers: 1\n  steps: 1", "lower-case"},
		{"missing name", "fleet:\n  servers: 1\n  steps: 1", "missing name"},
		{"rank out of range", `
name: x
fleet:
  servers: 2
  steps: 4
options:
  self_heal: true
events:
  - at: {step: 1}
    action: kill_server
    rank: 2
`, "rank 2 outside the fleet [0, 2)"},
		{"negative rank", `
name: x
fleet:
  servers: 2
  steps: 4
options:
  self_heal: true
events:
  - at: {step: 1}
    action: kill_server
    rank: -1
`, "rank -1 outside"},
		{"kill without self-heal", `
name: x
fleet:
  servers: 2
  steps: 4
events:
  - at: {step: 1}
    action: kill_server
    rank: 0
`, "needs options.self_heal"},
		{"event step past run", `
name: x
fleet:
  servers: 2
  steps: 4
options:
  self_heal: true
events:
  - at: {step: 4}
    action: kill_server
    rank: 0
`, "step 4 outside the run [0, 4)"},
		{"negative heal budget", `
name: x
fleet:
  servers: 2
  steps: 4
assert:
  heal_within_seconds: -1
`, "heal_within_seconds must be positive"},
		{"rate above one", "name: x\nfleet:\n  servers: 1\n  steps: 1\nfaults:\n  rate: 1.5", "outside [0, 1]"},
		{"negative fault seed", "name: x\nfleet:\n  servers: 1\n  steps: 1\nfaults:\n  seed: -1", "non-negative integer"},
		{"unknown action", `
name: x
fleet:
  servers: 2
  steps: 4
events:
  - at: {step: 1}
    action: explode
`, `unknown action "explode"`},
		{"field on wrong action", `
name: x
fleet:
  servers: 2
  steps: 4
events:
  - at: {step: 1}
    action: checkpoint
    rank: 0
`, `key "rank" does not apply`},
		{"restart at final step", `
name: x
fleet:
  servers: 2
  steps: 4
events:
  - at: {step: 4}
    action: restart
`, "step 4 outside [1, 4)"},
		{"two restarts", `
name: x
fleet:
  servers: 2
  steps: 6
events:
  - at: {step: 2}
    action: restart
  - at: {step: 4}
    action: restart
`, "at most one restart"},
		{"oracle with restart", `
name: x
fleet:
  servers: 2
  steps: 6
events:
  - at: {step: 2}
    action: restart
assert:
  oracle:
    anomaly: true
`, "incompatible with a restart"},
		{"oracle bad term", `
name: x
fleet:
  servers: 2
  steps: 4
assert:
  oracle:
    anomaly: true
    terms: [warp]
`, `unknown model term "warp"`},
		{"oracle serial", `
name: x
fleet:
  servers: 0
  steps: 4
assert:
  oracle:
    anomaly: false
`, "needs a parallel fleet"},
		{"accounting with self-heal", `
name: x
fleet:
  servers: 2
  steps: 4
options:
  accounting: true
  self_heal: true
`, "incompatible"},
		{"inject conflicts with faults", `
name: x
fleet:
  servers: 2
  steps: 4
faults:
  rate: 0.1
events:
  - at: {step: 1}
    action: inject_fault
    rate: 0.2
`, "one fault plane per run"},
		{"inject until before start", `
name: x
fleet:
  servers: 2
  steps: 6
events:
  - at: {step: 3}
    action: inject_fault
    rate: 0.2
    until: {step: 2}
`, "until step 2 not after start step 3"},
		{"float for int", "name: x\nfleet:\n  servers: 1.5\n  steps: 1", "expected an integer"},
		{"string for bool", "name: x\nfleet:\n  servers: 1\n  steps: 1\noptions:\n  self_heal: yes", "expected a boolean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted invalid scenario:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestTestdataCorpus checks the checked-in decoder corpus: everything
// under testdata/valid parses, everything under testdata/invalid is
// rejected.  The same files seed FuzzScenarioParse.
func TestTestdataCorpus(t *testing.T) {
	valid, err := filepath.Glob("testdata/valid/*.yaml")
	if err != nil || len(valid) == 0 {
		t.Fatalf("no valid corpus files: %v", err)
	}
	for _, f := range valid {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
	invalid, err := filepath.Glob("testdata/invalid/*.yaml")
	if err != nil || len(invalid) == 0 {
		t.Fatalf("no invalid corpus files: %v", err)
	}
	for _, f := range invalid {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", f)
		}
	}
}

// FuzzScenarioParse drives the YAML-subset parser and the strict decoder
// with arbitrary bytes: they must never panic, and anything that decodes
// must re-validate cleanly (Parse's contract is parse+validate).
func FuzzScenarioParse(f *testing.F) {
	for _, dir := range []string{"testdata/valid", "testdata/invalid"} {
		files, _ := filepath.Glob(dir + "/*.yaml")
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(src)
		}
	}
	f.Add([]byte(minimalSpec))
	f.Add([]byte("events:\n  - at: {step: 1}\n    action: kill_server"))
	f.Fuzz(func(t *testing.T, src []byte) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		// A spec that survived Parse must re-validate: Validate ran once
		// inside Parse and must be deterministic.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("Parse accepted but Validate rejects: %v\n%s", verr, src)
		}
		if spec.Name == "" {
			t.Fatalf("validated spec with empty name:\n%s", src)
		}
	})
}
