package scenario

// Seed sweeps: the same scenario replayed under N distinct fault and
// kill schedules (sweep index i offsets the declared seeds by i).  The
// fault-free reference is computed once and shared — sweeps reseed the
// environment, never the physics — and the seeds run concurrently on
// the bounded worker pool, each on its own deterministic kernel.

import (
	"opalperf/internal/harness"
	"opalperf/internal/parallel"
)

// Sweep runs the scenario at sweep indices 0..seeds-1 on up to workers
// concurrent simulations (workers <= 0 uses the parallel.Workers
// default) and returns one report per seed, in seed order.
func Sweep(spec *Spec, seeds, workers int) []Report {
	if seeds <= 0 {
		seeds = 1
	}
	var ref *harness.RunOutcome
	if spec.NeedsReference() {
		out, err := Reference(spec)
		if err != nil {
			reports := make([]Report, seeds)
			for i := range reports {
				reports[i] = Report{Scenario: spec.Name, Sweep: i, Err: err}
			}
			return reports
		}
		ref = out
	}
	idx := make([]int, seeds)
	for i := range idx {
		idx[i] = i
	}
	reports, _ := parallel.MapN(workers, idx, func(i, sweep int) (Report, error) {
		return RunScenario(spec, sweep, ref), nil
	})
	return reports
}
