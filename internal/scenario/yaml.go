package scenario

// A minimal YAML-subset parser for scenario files.  The repo is
// dependency-free, so instead of importing a YAML library we implement
// exactly the subset the scenario schema needs and reject everything
// else loudly:
//
//   - block mappings (`key: value`, nested by indentation)
//   - block sequences (`- item`, `- key: value` with continuation lines)
//   - single-line flow collections (`{step: 3}`, `[comm, sync]`)
//   - scalars: null/~, true/false, integers, floats, single- and
//     double-quoted strings, plain strings
//   - `#` comments (full-line and trailing)
//
// No anchors, no aliases, no tags, no multi-line scalars, no tabs.  The
// parser produces map[string]any / []any / scalar trees; the strict
// decoder in spec.go turns them into scenario specs and rejects unknown
// keys.  Duplicate keys are parse errors — a scenario that silently
// drops half its assertions is worse than one that fails to load.

import (
	"fmt"
	"strconv"
	"strings"
)

// parseError is a parse failure with a 1-based line number.
type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string {
	if e.line > 0 {
		return fmt.Sprintf("line %d: %s", e.line, e.msg)
	}
	return e.msg
}

// srcLine is one significant input line.
type srcLine struct {
	num    int    // 1-based source line number
	indent int    // leading spaces
	text   string // content without indentation or trailing comment
}

// ParseYAML parses the scenario YAML subset into a generic tree of
// map[string]any, []any and scalars.
func ParseYAML(src []byte) (any, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, &parseError{0, "empty document"}
	}
	p := &parser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, &parseError{p.lines[p.pos].num, fmt.Sprintf("unexpected de-indented content %q", p.lines[p.pos].text)}
	}
	return v, nil
}

// splitLines strips comments and blank lines and records indentation.
func splitLines(src string) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, &parseError{i + 1, "tab characters are not allowed (indent with spaces)"}
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		text := strings.TrimRight(stripComment(raw[indent:]), " ")
		if text == "" {
			continue
		}
		out = append(out, srcLine{num: i + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing `#` comment that is not inside quotes.
// A full-line comment starts with `#`; a trailing comment's `#` must
// follow whitespace (so `rate#x` stays a plain scalar, as in YAML).
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				if quote == '\'' && i+1 < len(s) && s[i+1] == '\'' {
					i++ // '' escape inside single quotes
					continue
				}
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

type parser struct {
	lines []srcLine
	pos   int
}

// parseBlock parses the mapping or sequence whose lines sit at exactly
// `indent` columns.
func (p *parser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, &parseError{0, "unexpected end of document"}
	}
	ln := p.lines[p.pos]
	if ln.indent != indent {
		return nil, &parseError{ln.num, fmt.Sprintf("bad indentation: got %d spaces, expected %d", ln.indent, indent)}
	}
	if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *parser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, &parseError{ln.num, fmt.Sprintf("bad indentation: got %d spaces, expected %d", ln.indent, indent)}
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, &parseError{ln.num, "sequence item in a mapping block"}
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, &parseError{ln.num, fmt.Sprintf("duplicate key %q", key)}
		}
		p.pos++
		if rest != "" {
			v, err := parseScalarOrFlow(rest, ln.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// `key:` alone — a nested block at deeper indentation, or null.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *parser) parseSequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, &parseError{ln.num, fmt.Sprintf("bad indentation: got %d spaces, expected %d", ln.indent, indent)}
		}
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, &parseError{ln.num, "mapping entry in a sequence block"}
		}
		if ln.text == "-" {
			// Item body on the following, deeper-indented lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		body := strings.TrimLeft(ln.text[2:], " ")
		if body == "" {
			return nil, &parseError{ln.num, "empty sequence item"}
		}
		// `- key: value` starts an inline mapping item whose further keys
		// continue on deeper-indented lines; rewrite the dash as
		// indentation and re-parse as a mapping block.
		if k, _, err := splitKey(srcLine{num: ln.num, text: body}); err == nil && k != "" {
			itemIndent := indent + (len(ln.text) - len(body))
			p.lines[p.pos] = srcLine{num: ln.num, indent: itemIndent, text: body}
			v, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.pos++
		v, err := parseScalarOrFlow(body, ln.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// splitKey splits `key: rest` / `key:`; keys are plain scalars (no
// quotes needed for the schema's fixed vocabulary).
func splitKey(ln srcLine) (key, rest string, err error) {
	i := strings.Index(ln.text, ":")
	if i < 0 {
		return "", "", &parseError{ln.num, fmt.Sprintf("expected `key: value`, got %q", ln.text)}
	}
	if i+1 < len(ln.text) && ln.text[i+1] != ' ' {
		return "", "", &parseError{ln.num, fmt.Sprintf("expected a space after the colon in %q", ln.text)}
	}
	key = strings.TrimSpace(ln.text[:i])
	if key == "" || strings.ContainsAny(key, "{}[]\"'#,") {
		return "", "", &parseError{ln.num, fmt.Sprintf("bad mapping key %q", key)}
	}
	return key, strings.TrimSpace(ln.text[i+1:]), nil
}

// parseScalarOrFlow parses an inline value: a flow collection or a scalar.
func parseScalarOrFlow(s string, line int) (any, error) {
	if strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[") {
		v, rest, err := parseFlow(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, &parseError{line, fmt.Sprintf("trailing content %q after flow collection", rest)}
		}
		return v, nil
	}
	return parseScalar(s, line)
}

// parseFlow parses `{...}` / `[...]` and returns the unconsumed tail.
func parseFlow(s string, line int) (any, string, error) {
	switch s[0] {
	case '{':
		m := map[string]any{}
		rest := strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(rest, "}") {
			return m, rest[1:], nil
		}
		for {
			i := strings.Index(rest, ":")
			if i < 0 {
				return nil, "", &parseError{line, fmt.Sprintf("expected `key: value` in flow mapping near %q", rest)}
			}
			key := strings.TrimSpace(rest[:i])
			if key == "" || strings.ContainsAny(key, "{}[]\"'#,") {
				return nil, "", &parseError{line, fmt.Sprintf("bad flow mapping key %q", key)}
			}
			if _, dup := m[key]; dup {
				return nil, "", &parseError{line, fmt.Sprintf("duplicate key %q", key)}
			}
			var v any
			var err error
			v, rest, err = parseFlowValue(strings.TrimLeft(rest[i+1:], " "), line)
			if err != nil {
				return nil, "", err
			}
			m[key] = v
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " ")
				continue
			}
			if strings.HasPrefix(rest, "}") {
				return m, rest[1:], nil
			}
			return nil, "", &parseError{line, fmt.Sprintf("expected `,` or `}` near %q", rest)}
		}
	case '[':
		var seq []any
		rest := strings.TrimLeft(s[1:], " ")
		if strings.HasPrefix(rest, "]") {
			return []any{}, rest[1:], nil
		}
		for {
			var v any
			var err error
			v, rest, err = parseFlowValue(rest, line)
			if err != nil {
				return nil, "", err
			}
			seq = append(seq, v)
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " ")
				continue
			}
			if strings.HasPrefix(rest, "]") {
				return seq, rest[1:], nil
			}
			return nil, "", &parseError{line, fmt.Sprintf("expected `,` or `]` near %q", rest)}
		}
	}
	return nil, "", &parseError{line, fmt.Sprintf("not a flow collection: %q", s)}
}

// parseFlowValue parses one value inside a flow collection, stopping at
// the enclosing delimiter.
func parseFlowValue(s string, line int) (any, string, error) {
	if s == "" {
		return nil, "", &parseError{line, "missing value in flow collection"}
	}
	if s[0] == '{' || s[0] == '[' {
		return parseFlow(s, line)
	}
	if s[0] == '\'' || s[0] == '"' {
		str, rest, err := parseQuoted(s, line)
		return str, rest, err
	}
	end := strings.IndexAny(s, ",}]")
	if end < 0 {
		end = len(s)
	}
	v, err := parseScalar(strings.TrimSpace(s[:end]), line)
	return v, s[end:], err
}

// parseQuoted consumes a quoted string and returns the tail.
func parseQuoted(s string, line int) (string, string, error) {
	quote := s[0]
	if quote == '"' {
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				str, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", &parseError{line, fmt.Sprintf("bad double-quoted string %q: %v", s[:i+1], err)}
				}
				return str, s[i+1:], nil
			}
		}
		return "", "", &parseError{line, "unterminated double-quoted string"}
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		if s[i] == '\'' {
			if i+1 < len(s) && s[i+1] == '\'' {
				b.WriteByte('\'')
				i++
				continue
			}
			return b.String(), s[i+1:], nil
		}
		b.WriteByte(s[i])
	}
	return "", "", &parseError{line, "unterminated single-quoted string"}
}

// parseScalar types a plain scalar: null, bool, int, float or string.
func parseScalar(s string, line int) (any, error) {
	switch s {
	case "", "null", "~", "Null", "NULL":
		return nil, nil
	case "true", "True", "TRUE":
		return true, nil
	case "false", "False", "FALSE":
		return false, nil
	}
	if s[0] == '\'' || s[0] == '"' {
		str, rest, err := parseQuoted(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, &parseError{line, fmt.Sprintf("trailing content %q after quoted string", rest)}
		}
		return str, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
