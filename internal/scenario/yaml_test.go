package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLBasics(t *testing.T) {
	src := `
# a comment
name: hello
count: 42
ratio: 0.5
neg: -3
on: true
off: false
empty: null
tilde: ~
quoted: "a # not a comment"
single: 'it''s'
`
	got, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name": "hello", "count": int64(42), "ratio": 0.5, "neg": int64(-3),
		"on": true, "off": false, "empty": nil, "tilde": nil,
		"quoted": "a # not a comment", "single": "it's",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLNesting(t *testing.T) {
	src := `
fleet:
  servers: 2
  steps: 4
events:
  - at: {step: 1}
    action: kill_server
    rank: 0
  - at: {step: 3}
    action: checkpoint
terms: [par, seq]
`
	got, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"fleet": map[string]any{"servers": int64(2), "steps": int64(4)},
		"events": []any{
			map[string]any{"at": map[string]any{"step": int64(1)}, "action": "kill_server", "rank": int64(0)},
			map[string]any{"at": map[string]any{"step": int64(3)}, "action": "checkpoint"},
		},
		"terms": []any{"par", "seq"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"tab", "a:\n\tb: 1", "tab"},
		{"duplicate key", "a: 1\na: 2", "duplicate key"},
		{"missing colon", "just words\n", "expected `key: value`"},
		{"bad flow", "a: {b: 1", "expected `,` or `}`"},
		{"unterminated quote", `a: "oops`, "unterminated"},
		{"mixed map in sequence", "- a\nb: 1", "sequence"},
		{"bad indent", "a:\n    b: 1\n   c: 2", "indent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("parsed %q without error", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseYAMLLineNumbers(t *testing.T) {
	_, err := ParseYAML([]byte("a: 1\nb: 2\nb: 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("duplicate-key error missing line number: %v", err)
	}
}
