package idl

import "testing"

// FuzzParse hardens the IDL parser: arbitrary input must either parse or
// return an error — never panic — and whatever parses must generate
// formattable Go code.
func FuzzParse(f *testing.F) {
	f.Add("service A {\n m(x float64) (y int)\n}")
	f.Add(sample)
	f.Add("service A {")
	f.Add("}")
	f.Add("service A {\n m(x []float64, y string) ()\n}\nservice B {\n n() ()\n}")
	f.Add("// nothing")

	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		out, err := Generate(file, "fuzzed")
		if err != nil {
			t.Fatalf("parsed IDL failed to generate: %v\nsource: %q", err, src)
		}
		if len(out) == 0 {
			t.Fatal("empty generated code")
		}
	})
}
