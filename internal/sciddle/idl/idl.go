// Package idl implements the Sciddle interface-description language and
// its stub compiler.  The original Sciddle shipped a stub generator that
// read a remote interface specification and emitted the client and server
// communication stubs translating RPCs into PVM message passing (Section 3
// of the paper); this package does the same for Go: Parse reads a .idl
// file and Generate emits a Go source file with a typed server handler
// interface, a registration function and a typed client.
//
// Grammar (line comments with //):
//
//	service <Name> {
//	    <method>(<arg> <type>, ...) (<ret> <type>, ...)
//	}
//
// Supported types: float64, []float64, int, []int64, string, []byte.
package idl

import (
	"fmt"
	"go/format"
	"strings"
	"unicode"
)

// Param is one named argument or result.
type Param struct {
	Name string
	Type string
}

// Method is one remote procedure.
type Method struct {
	Name string
	Args []Param
	Rets []Param
}

// Service is one remote interface.
type Service struct {
	Name    string
	Methods []Method
}

// File is a parsed IDL file.
type File struct {
	Services []Service
}

var validTypes = map[string]bool{
	"float64": true, "[]float64": true,
	"int": true, "[]int64": true,
	"string": true, "[]byte": true,
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("idl: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads an IDL source text.
func Parse(src string) (*File, error) {
	f := &File{}
	var cur *Service
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "service "):
			if cur != nil {
				return nil, errf(lineNo, "nested service declaration")
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "service "))
			if !strings.HasSuffix(rest, "{") {
				return nil, errf(lineNo, "expected '{' after service name")
			}
			name := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
			if !isIdent(name) {
				return nil, errf(lineNo, "invalid service name %q", name)
			}
			f.Services = append(f.Services, Service{Name: name})
			cur = &f.Services[len(f.Services)-1]
		case line == "}":
			if cur == nil {
				return nil, errf(lineNo, "unmatched '}'")
			}
			cur = nil
		default:
			if cur == nil {
				return nil, errf(lineNo, "method outside service: %q", line)
			}
			m, err := parseMethod(line, lineNo)
			if err != nil {
				return nil, err
			}
			for _, prev := range cur.Methods {
				if prev.Name == m.Name {
					return nil, errf(lineNo, "duplicate method %q", m.Name)
				}
			}
			cur.Methods = append(cur.Methods, m)
		}
	}
	if cur != nil {
		return nil, errf(0, "unterminated service %q", cur.Name)
	}
	if len(f.Services) == 0 {
		return nil, errf(0, "no service declared")
	}
	return f, nil
}

// parseMethod parses `name(args) (rets)`.
func parseMethod(line string, lineNo int) (Method, error) {
	open := strings.Index(line, "(")
	if open < 0 {
		return Method{}, errf(lineNo, "expected '(' in method declaration")
	}
	name := strings.TrimSpace(line[:open])
	if !isIdent(name) {
		return Method{}, errf(lineNo, "invalid method name %q", name)
	}
	rest := line[open:]
	args, rest, err := parseParamList(rest, lineNo)
	if err != nil {
		return Method{}, err
	}
	rest = strings.TrimSpace(rest)
	var rets []Param
	if rest != "" {
		rets, rest, err = parseParamList(rest, lineNo)
		if err != nil {
			return Method{}, err
		}
		if strings.TrimSpace(rest) != "" {
			return Method{}, errf(lineNo, "trailing junk %q", rest)
		}
	}
	return Method{Name: name, Args: args, Rets: rets}, nil
}

// parseParamList parses a parenthesized `name type, ...` list and returns
// the remainder of the line.
func parseParamList(s string, lineNo int) ([]Param, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") {
		return nil, "", errf(lineNo, "expected '('")
	}
	close := strings.Index(s, ")")
	if close < 0 {
		return nil, "", errf(lineNo, "missing ')'")
	}
	inner := strings.TrimSpace(s[1:close])
	rest := s[close+1:]
	if inner == "" {
		return nil, rest, nil
	}
	var out []Param
	seen := map[string]bool{}
	for _, part := range strings.Split(inner, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return nil, "", errf(lineNo, "expected 'name type', got %q", part)
		}
		name, typ := fields[0], fields[1]
		if !isIdent(name) {
			return nil, "", errf(lineNo, "invalid parameter name %q", name)
		}
		if !validTypes[typ] {
			return nil, "", errf(lineNo, "unsupported type %q", typ)
		}
		if seen[name] {
			return nil, "", errf(lineNo, "duplicate parameter %q", name)
		}
		seen[name] = true
		out = append(out, Param{Name: name, Type: typ})
	}
	return out, rest, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || unicode.IsLetter(r) || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// export capitalizes the first rune for Go exporting.
func export(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func packCall(typ string) string {
	switch typ {
	case "float64":
		return "PackFloat64"
	case "[]float64":
		return "PackFloat64s"
	case "int":
		return "PackInt"
	case "[]int64":
		return "PackInt64s"
	case "string":
		return "PackString"
	case "[]byte":
		return "PackBytes"
	}
	panic("idl: unreachable type " + typ)
}

func mustCall(typ string) string {
	switch typ {
	case "float64":
		return "MustFloat64()"
	case "[]float64":
		return "MustFloat64s()"
	case "int":
		return "MustInt()"
	case "[]int64":
		return "mustInt64s(b)"
	case "string":
		return "MustString()"
	case "[]byte":
		return "mustBytes(b)"
	}
	panic("idl: unreachable type " + typ)
}

// Generate emits a gofmt-formatted Go source file for the parsed IDL,
// placed in the named package.  The emitted code depends only on the
// sciddle runtime and pvm.
func Generate(f *File, pkg string) ([]byte, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "// Code generated by sciddlegen. DO NOT EDIT.\n\n")
	fmt.Fprintf(&b, "package %s\n\n", pkg)
	fmt.Fprintf(&b, "import (\n\t\"opalperf/internal/pvm\"\n\t\"opalperf/internal/sciddle\"\n)\n\n")
	// Small helpers shared by all services.
	b.WriteString(`func mustInt64s(b *pvm.Buffer) []int64 {
	xs, err := b.UnpackInt64s()
	if err != nil {
		panic(err)
	}
	return xs
}

func mustBytes(b *pvm.Buffer) []byte {
	xs, err := b.UnpackBytes()
	if err != nil {
		panic(err)
	}
	return xs
}

`)
	for i := range f.Services {
		genService(&b, &f.Services[i])
	}
	src := []byte(b.String())
	out, err := format.Source(src)
	if err != nil {
		return src, fmt.Errorf("idl: generated code does not format: %w", err)
	}
	return out, nil
}

func genService(b *strings.Builder, s *Service) {
	name := export(s.Name)
	// Handler interface.
	fmt.Fprintf(b, "// %sHandler is the server-side implementation of service %s.\n", name, s.Name)
	fmt.Fprintf(b, "// The task argument gives handlers access to HPM charging and barriers.\n")
	fmt.Fprintf(b, "type %sHandler interface {\n", name)
	for _, m := range s.Methods {
		fmt.Fprintf(b, "\t%s(t pvm.Task%s)%s\n", export(m.Name), sigParams(m.Args), sigResults(m.Rets))
	}
	fmt.Fprintf(b, "}\n\n")

	// Registration.  The generated handlers keep per-method scratch in the
	// closures: one reply buffer Reset and repacked per call, and one
	// reusable slice per []float64 argument, so a steady-state RPC phase
	// allocates nothing on the server.  Safe under the synchronous Sciddle
	// phase protocol (see the reuse contract on pvm.Buffer.Reset).
	fmt.Fprintf(b, "// Register%s binds h's methods onto svc.\n//\n", name)
	fmt.Fprintf(b, "// The []float64 arguments passed to h are stub-owned scratch, valid only\n")
	fmt.Fprintf(b, "// for the duration of the call; handlers that retain them must copy.\n")
	fmt.Fprintf(b, "func Register%s(svc *sciddle.Service, h %sHandler) {\n", name, name)
	for _, m := range s.Methods {
		for _, a := range m.Args {
			if a.Type == "[]float64" {
				fmt.Fprintf(b, "\tvar %s []float64\n", scratchName(m, a))
			}
		}
		if len(m.Rets) > 0 {
			fmt.Fprintf(b, "\t%sRep := pvm.NewBuffer()\n", m.Name)
		}
		fmt.Fprintf(b, "\tsvc.Register(%q, func(t pvm.Task, b *pvm.Buffer) *pvm.Buffer {\n", m.Name)
		for _, a := range m.Args {
			switch {
			case a.Type == "[]float64":
				fmt.Fprintf(b, "\t\tb.MustFloat64sReuse(&%s)\n", scratchName(m, a))
				fmt.Fprintf(b, "\t\t%s := %s\n", a.Name, scratchName(m, a))
			case needsBufferArg(a.Type):
				fmt.Fprintf(b, "\t\t%s := %s\n", a.Name, mustCall(a.Type))
			default:
				fmt.Fprintf(b, "\t\t%s := b.%s\n", a.Name, mustCall(a.Type))
			}
		}
		retNames := make([]string, len(m.Rets))
		for i, r := range m.Rets {
			retNames[i] = r.Name
		}
		call := fmt.Sprintf("h.%s(t%s)", export(m.Name), argList(m.Args))
		if len(m.Rets) == 0 {
			fmt.Fprintf(b, "\t\t%s\n\t\treturn nil\n", call)
		} else {
			fmt.Fprintf(b, "\t\t%s := %s\n", strings.Join(retNames, ", "), call)
			fmt.Fprintf(b, "\t\trep := %sRep.Reset()\n", m.Name)
			for _, r := range m.Rets {
				fmt.Fprintf(b, "\t\trep.%s(%s)\n", packCall(r.Type), r.Name)
			}
			fmt.Fprintf(b, "\t\treturn rep\n")
		}
		fmt.Fprintf(b, "\t})\n")
	}
	fmt.Fprintf(b, "}\n\n")

	// Client.
	fmt.Fprintf(b, "// %sClient is the typed client stub for service %s.\n", name, s.Name)
	fmt.Fprintf(b, "type %sClient struct {\n\tConn *sciddle.Conn\n}\n\n", name)
	fmt.Fprintf(b, "// New%sClient wraps an established connection.\n", name)
	fmt.Fprintf(b, "func New%sClient(conn *sciddle.Conn) *%sClient {\n\treturn &%sClient{Conn: conn}\n}\n\n", name, name, name)
	for _, m := range s.Methods {
		genClientMethod(b, name, m)
	}
}

func needsBufferArg(typ string) bool { return typ == "[]int64" || typ == "[]byte" }

// scratchName names the per-method reusable unpack slice for a []float64
// argument, e.g. nbintCoords.  Method names are unique per service, so the
// names cannot collide within a registration function.
func scratchName(m Method, a Param) string { return m.Name + export(a.Name) }

func sigParams(ps []Param) string {
	var sb strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&sb, ", %s %s", p.Name, p.Type)
	}
	return sb.String()
}

func sigResults(ps []Param) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%s %s", p.Name, p.Type)
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

func argList(ps []Param) string {
	var sb strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&sb, ", %s", p.Name)
	}
	return sb.String()
}

func genClientMethod(b *strings.Builder, svcName string, m Method) {
	mName := export(m.Name)
	replyType := svcName + mName + "Reply"
	// Reply struct for methods with results.
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "// %s holds the results of %s.%s.\n", replyType, svcName, mName)
		fmt.Fprintf(b, "type %s struct {\n", replyType)
		for _, r := range m.Rets {
			fmt.Fprintf(b, "\t%s %s\n", export(r.Name), r.Type)
		}
		fmt.Fprintf(b, "}\n\n")
	}
	// Args packer.
	fmt.Fprintf(b, "func pack%s%sArgs(%s) *pvm.Buffer {\n", svcName, mName, strings.TrimPrefix(sigParams(m.Args), ", "))
	fmt.Fprintf(b, "\tb := pvm.NewBuffer()\n")
	for _, a := range m.Args {
		fmt.Fprintf(b, "\tb.%s(%s)\n", packCall(a.Type), a.Name)
	}
	fmt.Fprintf(b, "\treturn b\n}\n\n")
	// Reply unpacker.
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "func unpack%s%sReply(b *pvm.Buffer) %s {\n", svcName, mName, replyType)
		fmt.Fprintf(b, "\tvar r %s\n", replyType)
		for _, rp := range m.Rets {
			if needsBufferArg(rp.Type) {
				fmt.Fprintf(b, "\tr.%s = %s\n", export(rp.Name), mustCall(rp.Type))
			} else {
				fmt.Fprintf(b, "\tr.%s = b.%s\n", export(rp.Name), mustCall(rp.Type))
			}
		}
		fmt.Fprintf(b, "\treturn r\n}\n\n")
		// In-place reply unpacker: []float64 results reuse the capacity of
		// the previous contents of the field, so a steady-state caller that
		// keeps its reply slots unpacks without heap allocation.
		fmt.Fprintf(b, "func unpack%s%sReplyInto(b *pvm.Buffer, r *%s) {\n", svcName, mName, replyType)
		for _, rp := range m.Rets {
			switch {
			case rp.Type == "[]float64":
				fmt.Fprintf(b, "\tb.MustFloat64sReuse(&r.%s)\n", export(rp.Name))
			case needsBufferArg(rp.Type):
				fmt.Fprintf(b, "\tr.%s = %s\n", export(rp.Name), mustCall(rp.Type))
			default:
				fmt.Fprintf(b, "\tr.%s = b.%s\n", export(rp.Name), mustCall(rp.Type))
			}
		}
		fmt.Fprintf(b, "}\n\n")
	}
	// Synchronous per-server call.
	fmt.Fprintf(b, "// %s calls %s on server index i.\n", mName, m.Name)
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "func (c *%sClient) %s(i int%s) %s {\n", svcName, mName, sigParams(m.Args), replyType)
		fmt.Fprintf(b, "\trep := c.Conn.Call(i, %q, pack%s%sArgs(%s))\n", m.Name, svcName, mName, strings.TrimPrefix(argList(m.Args), ", "))
		fmt.Fprintf(b, "\treturn unpack%s%sReply(rep)\n}\n\n", svcName, mName)
	} else {
		fmt.Fprintf(b, "func (c *%sClient) %s(i int%s) {\n", svcName, mName, sigParams(m.Args))
		fmt.Fprintf(b, "\tc.Conn.Call(i, %q, pack%s%sArgs(%s))\n}\n\n", m.Name, svcName, mName, strings.TrimPrefix(argList(m.Args), ", "))
	}
	// Phase call over all servers.
	fmt.Fprintf(b, "// %sPhase calls %s once on every server (one SPMD phase);\n", mName, m.Name)
	fmt.Fprintf(b, "// argFn supplies per-server arguments.\n")
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "func (c *%sClient) %sPhase(argFn func(i int) *pvm.Buffer) []%s {\n", svcName, mName, replyType)
		fmt.Fprintf(b, "\treps := c.Conn.CallPhase(%q, argFn)\n", m.Name)
		fmt.Fprintf(b, "\tout := make([]%s, len(reps))\n", replyType)
		fmt.Fprintf(b, "\tfor i, rep := range reps {\n\t\tout[i] = unpack%s%sReply(rep)\n\t}\n\treturn out\n}\n\n", svcName, mName)
	} else {
		fmt.Fprintf(b, "func (c *%sClient) %sPhase(argFn func(i int) *pvm.Buffer) {\n", svcName, mName)
		fmt.Fprintf(b, "\tc.Conn.CallPhase(%q, argFn)\n}\n\n", m.Name)
	}
	// Zero-alloc phase call: arguments are packed into connection-owned
	// request buffers (reused across phases) and, for methods with results,
	// replies are unpacked in place into the caller's reply slots.
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "// %sPhaseInto is %sPhase with steady-state buffer reuse: pack writes the\n", mName, mName)
		fmt.Fprintf(b, "// per-server arguments into a connection-owned request buffer, and the\n")
		fmt.Fprintf(b, "// replies are unpacked into out (len = number of servers), reusing the\n")
		fmt.Fprintf(b, "// capacity of its slice fields.  A caller that keeps out across phases\n")
		fmt.Fprintf(b, "// allocates nothing per phase.\n")
		fmt.Fprintf(b, "func (c *%sClient) %sPhaseInto(pack func(i int, args *pvm.Buffer), out []%s) {\n", svcName, mName, replyType)
		fmt.Fprintf(b, "\treps := c.Conn.CallPhasePacked(%q, pack)\n", m.Name)
		fmt.Fprintf(b, "\tfor i, rep := range reps {\n\t\tunpack%s%sReplyInto(rep, &out[i])\n\t}\n}\n\n", svcName, mName)
	} else {
		fmt.Fprintf(b, "// %sPhasePacked is %sPhase with steady-state buffer reuse: pack writes\n", mName, mName)
		fmt.Fprintf(b, "// the per-server arguments into a connection-owned request buffer.\n")
		fmt.Fprintf(b, "func (c *%sClient) %sPhasePacked(pack func(i int, args *pvm.Buffer)) {\n", svcName, mName)
		fmt.Fprintf(b, "\tc.Conn.CallPhasePacked(%q, pack)\n}\n\n", m.Name)
	}
	// Error-returning variants for fault-tolerant clients: transport
	// failures (reply deadline expired through every retry, session died)
	// come back as errors instead of unbounded waits — see
	// sciddle.Conn.SetCallTimeout and sciddle.ServerError.
	fmt.Fprintf(b, "// %sErr is %s with transport failures returned as errors\n", mName, mName)
	fmt.Fprintf(b, "// (see sciddle.Conn.SetCallTimeout).\n")
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "func (c *%sClient) %sErr(i int%s) (%s, error) {\n", svcName, mName, sigParams(m.Args), replyType)
		fmt.Fprintf(b, "\trep, err := c.Conn.CallErr(i, %q, pack%s%sArgs(%s))\n", m.Name, svcName, mName, strings.TrimPrefix(argList(m.Args), ", "))
		fmt.Fprintf(b, "\tif err != nil {\n\t\treturn %s{}, err\n\t}\n", replyType)
		fmt.Fprintf(b, "\treturn unpack%s%sReply(rep), nil\n}\n\n", svcName, mName)
	} else {
		fmt.Fprintf(b, "func (c *%sClient) %sErr(i int%s) error {\n", svcName, mName, sigParams(m.Args))
		fmt.Fprintf(b, "\t_, err := c.Conn.CallErr(i, %q, pack%s%sArgs(%s))\n\treturn err\n}\n\n", m.Name, svcName, mName, strings.TrimPrefix(argList(m.Args), ", "))
	}
	if len(m.Rets) > 0 {
		fmt.Fprintf(b, "// %sPhaseIntoErr is %sPhaseInto with transport failures surfaced as a\n", mName, mName)
		fmt.Fprintf(b, "// *sciddle.ServerError naming the failed server; out needs one slot per\n")
		fmt.Fprintf(b, "// current server.  Requires accounting off.\n")
		fmt.Fprintf(b, "func (c *%sClient) %sPhaseIntoErr(pack func(i int, args *pvm.Buffer), out []%s) error {\n", svcName, mName, replyType)
		fmt.Fprintf(b, "\treps, err := c.Conn.CallPhasePackedErr(%q, pack)\n", m.Name)
		fmt.Fprintf(b, "\tif err != nil {\n\t\treturn err\n\t}\n")
		fmt.Fprintf(b, "\tfor i, rep := range reps {\n\t\tunpack%s%sReplyInto(rep, &out[i])\n\t}\n\treturn nil\n}\n\n", svcName, mName)
	} else {
		fmt.Fprintf(b, "// %sPhasePackedErr is %sPhasePacked with transport failures surfaced as\n", mName, mName)
		fmt.Fprintf(b, "// a *sciddle.ServerError naming the failed server.  Requires accounting off.\n")
		fmt.Fprintf(b, "func (c *%sClient) %sPhasePackedErr(pack func(i int, args *pvm.Buffer)) error {\n", svcName, mName)
		fmt.Fprintf(b, "\t_, err := c.Conn.CallPhasePackedErr(%q, pack)\n\treturn err\n}\n\n", m.Name)
	}
	// Exported args packer for use with Phase argFn.
	fmt.Fprintf(b, "// Pack%s%sArgs builds the argument buffer for %sPhase.\n", svcName, mName, mName)
	fmt.Fprintf(b, "func Pack%s%sArgs(%s) *pvm.Buffer {\n\treturn pack%s%sArgs(%s)\n}\n\n",
		svcName, mName, strings.TrimPrefix(sigParams(m.Args), ", "), svcName, mName, strings.TrimPrefix(argList(m.Args), ", "))
	// Exported in-place args packer for use with the packed phase calls.
	fmt.Fprintf(b, "// Pack%s%sArgsInto packs the arguments for %s into b.\n", svcName, mName, packedPhaseName(m, mName))
	if len(m.Args) == 0 {
		fmt.Fprintf(b, "func Pack%s%sArgsInto(_ *pvm.Buffer) {}\n\n", svcName, mName)
		return
	}
	fmt.Fprintf(b, "func Pack%s%sArgsInto(b *pvm.Buffer%s) {\n", svcName, mName, sigParams(m.Args))
	for _, a := range m.Args {
		fmt.Fprintf(b, "\tb.%s(%s)\n", packCall(a.Type), a.Name)
	}
	fmt.Fprintf(b, "}\n\n")
}

func packedPhaseName(m Method, mName string) string {
	if len(m.Rets) > 0 {
		return mName + "PhaseInto"
	}
	return mName + "PhasePacked"
}
