package idl

import (
	"strings"
	"testing"
)

const sample = `
// The Opal remote interface.
service Opal {
    update(coords []float64) ()
    nbint(coords []float64) (evdw float64, ecoul float64, grad []float64, npairs int)
    hello() ()
    info(name string, raw []byte, ids []int64) (greeting string)
}
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Services) != 1 {
		t.Fatalf("services = %d", len(f.Services))
	}
	s := f.Services[0]
	if s.Name != "Opal" || len(s.Methods) != 4 {
		t.Fatalf("service = %+v", s)
	}
	nb := s.Methods[1]
	if nb.Name != "nbint" || len(nb.Args) != 1 || len(nb.Rets) != 4 {
		t.Fatalf("nbint = %+v", nb)
	}
	if nb.Rets[3].Name != "npairs" || nb.Rets[3].Type != "int" {
		t.Errorf("ret[3] = %+v", nb.Rets[3])
	}
	if len(s.Methods[2].Args) != 0 || len(s.Methods[2].Rets) != 0 {
		t.Errorf("hello should be void/void")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"", "no service"},
		{"service A {", "unterminated"},
		{"}", "unmatched"},
		{"foo() ()", "outside service"},
		{"service A {\nservice B {\n}\n}", "nested"},
		{"service 2bad {\n}", "invalid service name"},
		{"service A {\n m(x badtype) ()\n}", "unsupported type"},
		{"service A {\n m(x) ()\n}", "expected 'name type'"},
		{"service A {\n m(x float64, x int) ()\n}", "duplicate parameter"},
		{"service A {\n m() ()\n m() ()\n}", "duplicate method"},
		{"service A {\n 3m() ()\n}", "invalid method name"},
		{"service A {\n m() () extra\n}", "trailing junk"},
		{"service A {\n m\n}", "expected '('"},
		{"service A {\n m(x float64\n}", "missing ')'"},
		{"service A\n}", "expected '{'"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("service A {\n\n m(x badtype) ()\n}")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "// header\nservice A { // trailing comment\n// full line\n\n m() ()\n}\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Services[0].Methods) != 1 {
		t.Fatalf("methods = %+v", f.Services[0].Methods)
	}
}

func TestGenerateCompilesShapes(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(f, "opalrpc")
	if err != nil {
		t.Fatalf("generate: %v\n%s", err, out)
	}
	src := string(out)
	for _, want := range []string{
		"package opalrpc",
		"type OpalHandler interface",
		"Nbint(t pvm.Task, coords []float64) (evdw float64, ecoul float64, grad []float64, npairs int)",
		"func RegisterOpal(svc *sciddle.Service, h OpalHandler)",
		"type OpalClient struct",
		"type OpalNbintReply struct",
		"func (c *OpalClient) NbintPhase(argFn func(i int) *pvm.Buffer) []OpalNbintReply",
		"func PackOpalNbintArgs(coords []float64) *pvm.Buffer",
		"func (c *OpalClient) NbintPhaseInto(pack func(i int, args *pvm.Buffer), out []OpalNbintReply)",
		"func (c *OpalClient) UpdatePhasePacked(pack func(i int, args *pvm.Buffer))",
		"func PackOpalNbintArgsInto(b *pvm.Buffer, coords []float64)",
		"func PackOpalHelloArgsInto(_ *pvm.Buffer) {}",
		"b.MustFloat64sReuse(&nbintCoords)",
		"rep := nbintRep.Reset()",
		"func (c *OpalClient) Hello(i int)",
		"Info(t pvm.Task, name string, raw []byte, ids []int64) (greeting string)",
		"DO NOT EDIT",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f, _ := Parse(sample)
	a, err := Generate(f, "p")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(f, "p")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("generation is not deterministic")
	}
}

func TestExport(t *testing.T) {
	if export("nbint") != "Nbint" || export("") != "" || export("X") != "X" {
		t.Error("export casing wrong")
	}
}

func TestIsIdent(t *testing.T) {
	good := []string{"a", "A1", "_x", "updAte"}
	bad := []string{"", "1a", "a-b", "a b"}
	for _, s := range good {
		if !isIdent(s) {
			t.Errorf("isIdent(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isIdent(s) {
			t.Errorf("isIdent(%q) = true", s)
		}
	}
}

func TestMultipleServices(t *testing.T) {
	src := "service A {\n m() ()\n}\nservice B {\n n() (x int)\n}\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Services) != 2 {
		t.Fatalf("services = %d", len(f.Services))
	}
	out, err := Generate(f, "two")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "type AHandler interface") ||
		!strings.Contains(string(out), "type BHandler interface") {
		t.Error("both services should be generated")
	}
}
