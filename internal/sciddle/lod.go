package sciddle

// Level-of-detail (LoD) support: when enabled on a connection, the packed
// call-phase paths first try to replay the whole phase as analytic
// macro-events through pvm.MacroPhase — running the servers' handlers
// in-process on shared state and charging the exact fine-grained timeline
// closed-form — and fall back to ordinary message-passing execution
// whenever the phase is not provably macro-safe.  Method statistics,
// telemetry and flow records are replicated bit-identically either way.

import (
	"fmt"

	"opalperf/internal/pvm"
	"opalperf/internal/telemetry"
)

// DirectDispatcher returns an in-process dispatch function for svc,
// suitable as pvm.DirectEntry.Dispatch.  It consumes a request buffer
// with the standard Sciddle header (call id, method) exactly as the
// Serve loop would after delivery, runs the handler on the server's
// task, and returns the (possibly void) reply.  The code that spawns a
// server with Serve(t, svc, ...) should register the dispatcher built
// from the *same* svc, so handler state is shared whichever path runs.
func DirectDispatcher(svc *Service) func(st pvm.Task, req *pvm.Buffer) *pvm.Buffer {
	var voidReply *pvm.Buffer
	// Steady-state phases repeat the same method thousands of times, so a
	// one-entry handler cache removes the map lookup from the hot path.
	var lastMethod string
	var lastHandler Handler
	return func(st pvm.Task, req *pvm.Buffer) *pvm.Buffer {
		if _, err := req.UnpackInt(); err != nil { // call id
			panic(fmt.Sprintf("sciddle: malformed request: %v", err))
		}
		method, err := req.UnpackString()
		if err != nil {
			panic(fmt.Sprintf("sciddle: malformed request: %v", err))
		}
		if method == methodStop {
			panic("sciddle: stop requests are never macro-dispatched")
		}
		h := lastHandler
		if method != lastMethod || h == nil {
			h = svc.handlers[method]
			if h == nil {
				panic(fmt.Sprintf("sciddle: service %s has no method %q", svc.Name, method))
			}
			lastMethod, lastHandler = method, h
		}
		reply := h(st, req)
		if reply == nil {
			if voidReply == nil {
				voidReply = pvm.NewBuffer()
			}
			reply = voidReply.Reset()
		}
		return reply
	}
}

// SetLoD toggles level-of-detail macro replay for this connection's
// packed call phases.  It is a pure performance hint: every phase is
// verified eligible (simulated fabric, inert fault plane, quiescent
// kernel, all servers parked with registered dispatchers) before being
// replayed, and runs fine-grained otherwise, with identical results.
//
// In accounting mode the choice latches at the first phase: macro-skipped
// phases do not advance the servers' barrier parity, so a run must be
// all-macro or all-fine.  If the first phase cannot replay, LoD turns
// itself off for the connection; if it can, a later ineligible phase —
// impossible in the steady single-client topology — panics rather than
// desynchronize the barriers.
func (c *Conn) SetLoD(on bool) { c.lod = on }

// LoD reports whether macro replay is enabled.
func (c *Conn) LoD() bool { return c.lod }

// SuspendLoD forces fine-grained execution until ResumeLoD: windows that
// need event-level detail — an administrative kill schedule, a heal
// epoch boundary — run every phase through real message passing.  Each
// packed phase executed while suspended counts as a LoD fallback.
// No-op when LoD is off.
func (c *Conn) SuspendLoD() {
	if c.lod {
		c.lod, c.lodSusp = false, true
	}
}

// ResumeLoD re-enables macro replay after SuspendLoD.
func (c *Conn) ResumeLoD() {
	if c.lodSusp {
		c.lod, c.lodSusp = true, false
	}
}

// macroPhasePacked attempts to replay one packed call phase as
// macro-events.  On false, nothing observable has happened and the
// caller must run the phase fine-grained.
func (c *Conn) macroPhasePacked(method string, pack func(i int, args *pvm.Buffer)) ([]*pvm.Buffer, bool) {
	n := len(c.servers)
	if n == 0 {
		return nil, false
	}
	c.ensurePhaseScratch()
	for len(c.macroExecs) < n {
		i := len(c.macroExecs)
		c.macroExecs = append(c.macroExecs, func(st pvm.Task) int {
			rep := c.macroEntries[i].Dispatch(st, c.reqBufs[i].Rewind())
			c.replies[i] = rep.Rewind()
			return rep.Bytes()
		})
	}
	// The dispatch entries are memoized per fleet: in the steady state the
	// server set is stable across thousands of phases, so the per-server
	// registry lookups run once per fleet epoch (Connect, DropServer,
	// ReplaceServer all change the slice contents and miss the memo).
	if !intsEqual(c.macroFleet, c.servers) {
		c.macroEntries = c.macroEntries[:0]
		for _, tid := range c.servers {
			entry, ok := pvm.DirectOf(c.t, tid)
			if !ok {
				c.macroFleet = c.macroFleet[:0]
				return nil, false
			}
			c.macroEntries = append(c.macroEntries, entry)
		}
		c.macroFleet = append(c.macroFleet[:0], c.servers...)
	}
	c.macroCalls = c.macroCalls[:0]
	seq0 := c.seq
	for i := range c.servers {
		req := c.reqBufs[i].Reset()
		callID := c.seq
		c.seq++
		c.callIDs[i] = callID
		req.PackInt(callID).PackString(method)
		if pack != nil {
			pack(i, req)
		}
		c.macroCalls = append(c.macroCalls, pvm.MacroCall{
			Server:   c.servers[i],
			ReqBytes: req.Bytes(),
			Exec:     c.macroExecs[i],
		})
	}
	if !pvm.MacroPhase(c.t, c.macroCalls, c.accounting, n+1, &c.macroTimes) {
		c.seq = seq0
		return nil, false
	}
	// Replicate the fine-grained bookkeeping of CallPhasePacked from the
	// replayed timeline: send-side stats in call order, then the two
	// phase barriers (already charged by the engine), then receive-side
	// stats, latencies and flows in collection order.
	st := c.stat(method)
	mt := &c.macroTimes
	for i := range c.servers {
		st.TCall += mt.SendEnd[i] - mt.Issue[i]
		st.Calls++
		st.BytesOut += c.macroCalls[i].ReqBytes
		st.tBytesOut.Add(uint64(c.macroCalls[i].ReqBytes))
	}
	if c.accounting {
		c.phase++
	}
	for i := range c.servers {
		st.TReturn += mt.Collect[i] - mt.RecvStart[i]
		st.BytesIn += mt.RepBytes[i]
		st.tBytesIn.Add(uint64(mt.RepBytes[i]))
		st.tLat.Observe(mt.Collect[i] - mt.Issue[i])
		telemetry.MatrixRecordLatency(c.t.TID(), c.servers[i], mt.Collect[i]-mt.Issue[i])
		pvm.ReportFlow(c.t, method, c.servers[i], mt.Issue[i], mt.Collect[i])
	}
	c.lodMacro++
	telemetry.LoDMacroPhases.Add(1)
	return c.replies, true
}

// LoDPhases returns this connection's macro-replayed and fallback phase
// counts — the per-run view of the global LoDMacroPhases/
// LoDFallbackPhases telemetry counters, safe to read in parallel sweeps
// where the process-wide counters aggregate many runs.
func (c *Conn) LoDPhases() (macro, fallback int) { return c.lodMacro, c.lodFallback }

// tryMacroPhase wraps macroPhasePacked with the accounting latch
// described at SetLoD.
func (c *Conn) tryMacroPhase(method string, pack func(i int, args *pvm.Buffer)) ([]*pvm.Buffer, bool) {
	if !c.lod {
		if c.lodSusp {
			c.lodFallback++
			telemetry.LoDFallbackPhases.Add(1)
		}
		return nil, false
	}
	replies, ok := c.macroPhasePacked(method, pack)
	if ok {
		if c.accounting {
			c.macroAcct = true
		}
		return replies, true
	}
	c.lodFallback++
	telemetry.LoDFallbackPhases.Add(1)
	if c.accounting {
		if c.macroAcct {
			panic("sciddle: lod: accounting phase lost macro eligibility mid-run; a fine-grained phase would desynchronize the barrier parity")
		}
		// First phase already needs the fine path: stay fine-grained for
		// the whole connection so barrier parities agree.
		c.lod = false
	}
	return nil, false
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensurePhaseScratch sizes the per-server scratch shared by the packed
// phase paths (fine-grained and macro).
func (c *Conn) ensurePhaseScratch() {
	for len(c.reqBufs) < len(c.servers) {
		c.reqBufs = append(c.reqBufs, pvm.NewBuffer())
	}
	if cap(c.callIDs) < len(c.servers) {
		c.callIDs = make([]int, len(c.servers))
		c.callT0s = make([]float64, len(c.servers))
		c.replies = make([]*pvm.Buffer, len(c.servers))
	}
	c.callIDs = c.callIDs[:len(c.servers)]
	c.callT0s = c.callT0s[:len(c.servers)]
	c.replies = c.replies[:len(c.servers)]
}
