package sciddle

import (
	"fmt"
	"strings"

	"opalperf/internal/trace"
	"opalperf/internal/vm"
)

// High-level middleware metrics (Section 3.3): "in the parallel
// programming framework Sciddle was conceived for, it might be easy to
// measure ... high level metrics like server computation rate, client
// computation rate ..., but low level indicators like communication
// efficiency, idle times, and load imbalance ... are much harder to get."
// With the accounting barriers in place, all of them fall out of the
// recorded timelines; Metrics packages them.

// Metrics summarizes one instrumented client-server run.
type Metrics struct {
	// Wall is the measured wall-clock (virtual) time of the window.
	Wall float64
	// ClientComputeShare is the fraction of the wall clock the client
	// spent computing.
	ClientComputeShare float64
	// ServerComputeShare is the mean fraction of the wall clock a server
	// spent computing (the "server computation rate" in time terms).
	ServerComputeShare float64
	// CommEfficiency is the fraction of total communication time spent
	// moving payload bytes rather than per-message overhead; it needs the
	// byte volume and the platform's key data to split, so here it is
	// the simpler ratio of communication to wall clock.
	CommShare float64
	// LoadImbalance is (max-mean)/mean over server compute times.
	LoadImbalance float64
	// SyncShare is the barrier share of the wall clock.
	SyncShare float64
	// IdleShare is the unaccounted residual share.
	IdleShare float64
}

// MetricsOf derives the middleware metrics from a recorded run window.
func MetricsOf(rec *trace.Recorder, clientID int, serverIDs []int, t0, t1 float64) Metrics {
	wall := t1 - t0
	b := trace.ComputeBreakdownBetween(rec, clientID, serverIDs, t0, t1, wall)
	m := Metrics{Wall: wall}
	if wall <= 0 {
		return m
	}
	ct := rec.TotalsBetween(clientID, t0, t1)
	m.ClientComputeShare = (ct[vm.SegCompute] + ct[vm.SegOther]) / wall
	m.ServerComputeShare = b.ParComp / wall
	m.CommShare = b.Comm / wall
	m.SyncShare = b.Sync / wall
	m.IdleShare = b.Idle / wall
	m.LoadImbalance = b.Imbalance()
	return m
}

// String renders the metrics as the middleware would report them.
func (m Metrics) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "middleware metrics over %.4gs:\n", m.Wall)
	fmt.Fprintf(&sb, "  server computation %5.1f%%   client computation %5.1f%%\n",
		100*m.ServerComputeShare, 100*m.ClientComputeShare)
	fmt.Fprintf(&sb, "  communication      %5.1f%%   synchronization    %5.1f%%\n",
		100*m.CommShare, 100*m.SyncShare)
	fmt.Fprintf(&sb, "  idle               %5.1f%%   load imbalance     %5.1f%%\n",
		100*m.IdleShare, 100*m.LoadImbalance)
	return sb.String()
}
