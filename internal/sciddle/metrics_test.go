package sciddle

import (
	"math"
	"strings"
	"testing"

	"opalperf/internal/platform"
	"opalperf/internal/pvm"
	"opalperf/internal/trace"
	"opalperf/internal/vm"
)

func TestMetricsOf(t *testing.T) {
	rec := trace.NewRecorder()
	// Window [0, 10]: client computes 1.5, comm 1, sync 0.5; two servers
	// compute 6 and 8 (mean 7) — components fill the wall exactly.
	rec.Segment(0, "client", vm.SegCompute, 0, 1.5)
	rec.Segment(0, "client", vm.SegComm, 1.5, 2.5)
	rec.Segment(0, "client", vm.SegSync, 2.5, 3)
	rec.Segment(1, "s0", vm.SegCompute, 0, 6)
	rec.Segment(2, "s1", vm.SegCompute, 0, 8)
	m := MetricsOf(rec, 0, []int{1, 2}, 0, 10)
	if m.Wall != 10 {
		t.Errorf("wall = %v", m.Wall)
	}
	if math.Abs(m.ClientComputeShare-0.15) > 1e-12 {
		t.Errorf("client share = %v", m.ClientComputeShare)
	}
	if math.Abs(m.ServerComputeShare-0.7) > 1e-12 {
		t.Errorf("server share = %v", m.ServerComputeShare)
	}
	if math.Abs(m.LoadImbalance-1.0/7.0) > 1e-12 {
		t.Errorf("imbalance = %v", m.LoadImbalance)
	}
	if math.Abs(m.CommShare-0.1) > 1e-12 {
		t.Errorf("comm share = %v", m.CommShare)
	}
	if math.Abs(m.SyncShare-0.05) > 1e-12 {
		t.Errorf("sync share = %v", m.SyncShare)
	}
	// Shares account for the full wall clock.
	total := m.ClientComputeShare + m.ServerComputeShare + m.CommShare + m.SyncShare + m.IdleShare
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	s := m.String()
	if !strings.Contains(s, "load imbalance") {
		t.Errorf("report = %q", s)
	}
}

func TestMetricsDegenerateWindow(t *testing.T) {
	rec := trace.NewRecorder()
	m := MetricsOf(rec, 0, nil, 5, 5)
	if m.Wall != 0 || m.ClientComputeShare != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMetricsFromRealRun(t *testing.T) {
	// End-to-end: an accounting-mode RPC run yields sensible metrics.
	sim, rec := runClient(t, platform.FastCoPs, 3, true, func(c *Conn) {
		c.CallPhase("work", func(i int) *pvm.Buffer {
			return pvm.NewBuffer().PackFloat64(67e6)
		})
	})
	m := MetricsOf(rec, 0, []int{1, 2, 3}, 0, sim.Time())
	if m.ServerComputeShare <= 0.5 {
		t.Errorf("server compute share = %v, want dominant", m.ServerComputeShare)
	}
	if m.SyncShare <= 0 {
		t.Error("no sync share recorded")
	}
	if m.LoadImbalance > 0.05 {
		t.Errorf("imbalance = %v for balanced servers", m.LoadImbalance)
	}
}

func TestMetricsEmptyWindow(t *testing.T) {
	// A window with no recorded segments: well-defined zero shares, no NaN.
	rec := trace.NewRecorder()
	m := MetricsOf(rec, 0, []int{1, 2}, 0, 4)
	if m.Wall != 4 {
		t.Errorf("wall = %v", m.Wall)
	}
	if m.ClientComputeShare != 0 || m.ServerComputeShare != 0 ||
		m.CommShare != 0 || m.SyncShare != 0 || m.LoadImbalance != 0 {
		t.Errorf("empty-window metrics = %+v, want zero shares", m)
	}
	// The whole wall is unaccounted, hence idle.
	if math.Abs(m.IdleShare-1) > 1e-12 {
		t.Errorf("idle share = %v, want 1", m.IdleShare)
	}
}

func TestMetricsNegativeWall(t *testing.T) {
	// t1 < t0 (wall < 0) must not divide: all shares stay zero.
	rec := trace.NewRecorder()
	rec.Segment(0, "client", vm.SegCompute, 0, 1)
	m := MetricsOf(rec, 0, []int{1}, 3, 1)
	if m.Wall != -2 {
		t.Errorf("wall = %v", m.Wall)
	}
	if m.ClientComputeShare != 0 || m.ServerComputeShare != 0 ||
		m.CommShare != 0 || m.SyncShare != 0 || m.IdleShare != 0 || m.LoadImbalance != 0 {
		t.Errorf("negative-wall metrics = %+v, want all-zero shares", m)
	}
	if math.IsNaN(m.IdleShare) || math.IsInf(m.ClientComputeShare, 0) {
		t.Errorf("degenerate window produced NaN/Inf: %+v", m)
	}
}

func TestMetricsNoServers(t *testing.T) {
	// A serial run: no servers, so server share and imbalance are zero and
	// the client's own activity still decomposes the wall.
	rec := trace.NewRecorder()
	rec.Segment(0, "client", vm.SegCompute, 0, 3)
	rec.Segment(0, "client", vm.SegComm, 3, 4)
	m := MetricsOf(rec, 0, nil, 0, 8)
	if m.ServerComputeShare != 0 || m.LoadImbalance != 0 {
		t.Errorf("serverless metrics = %+v, want zero server terms", m)
	}
	if math.Abs(m.ClientComputeShare-0.375) > 1e-12 {
		t.Errorf("client share = %v", m.ClientComputeShare)
	}
	if math.Abs(m.CommShare-0.125) > 1e-12 {
		t.Errorf("comm share = %v", m.CommShare)
	}
	if math.Abs(m.IdleShare-0.5) > 1e-12 {
		t.Errorf("idle share = %v", m.IdleShare)
	}
}

func TestMetricsStringGolden(t *testing.T) {
	m := Metrics{
		Wall:               2.5,
		ClientComputeShare: 0.125,
		ServerComputeShare: 0.5,
		CommShare:          0.25,
		SyncShare:          0.05,
		IdleShare:          0.075,
		LoadImbalance:      0.1,
	}
	want := "middleware metrics over 2.5s:\n" +
		"  server computation  50.0%   client computation  12.5%\n" +
		"  communication       25.0%   synchronization      5.0%\n" +
		"  idle                 7.5%   load imbalance      10.0%\n"
	if got := m.String(); got != want {
		t.Errorf("String() =\n%q\nwant\n%q", got, want)
	}
}
