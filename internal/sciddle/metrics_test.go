package sciddle

import (
	"math"
	"strings"
	"testing"

	"opalperf/internal/platform"
	"opalperf/internal/pvm"
	"opalperf/internal/trace"
	"opalperf/internal/vm"
)

func TestMetricsOf(t *testing.T) {
	rec := trace.NewRecorder()
	// Window [0, 10]: client computes 1.5, comm 1, sync 0.5; two servers
	// compute 6 and 8 (mean 7) — components fill the wall exactly.
	rec.Segment(0, "client", vm.SegCompute, 0, 1.5)
	rec.Segment(0, "client", vm.SegComm, 1.5, 2.5)
	rec.Segment(0, "client", vm.SegSync, 2.5, 3)
	rec.Segment(1, "s0", vm.SegCompute, 0, 6)
	rec.Segment(2, "s1", vm.SegCompute, 0, 8)
	m := MetricsOf(rec, 0, []int{1, 2}, 0, 10)
	if m.Wall != 10 {
		t.Errorf("wall = %v", m.Wall)
	}
	if math.Abs(m.ClientComputeShare-0.15) > 1e-12 {
		t.Errorf("client share = %v", m.ClientComputeShare)
	}
	if math.Abs(m.ServerComputeShare-0.7) > 1e-12 {
		t.Errorf("server share = %v", m.ServerComputeShare)
	}
	if math.Abs(m.LoadImbalance-1.0/7.0) > 1e-12 {
		t.Errorf("imbalance = %v", m.LoadImbalance)
	}
	if math.Abs(m.CommShare-0.1) > 1e-12 {
		t.Errorf("comm share = %v", m.CommShare)
	}
	if math.Abs(m.SyncShare-0.05) > 1e-12 {
		t.Errorf("sync share = %v", m.SyncShare)
	}
	// Shares account for the full wall clock.
	total := m.ClientComputeShare + m.ServerComputeShare + m.CommShare + m.SyncShare + m.IdleShare
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
	s := m.String()
	if !strings.Contains(s, "load imbalance") {
		t.Errorf("report = %q", s)
	}
}

func TestMetricsDegenerateWindow(t *testing.T) {
	rec := trace.NewRecorder()
	m := MetricsOf(rec, 0, nil, 5, 5)
	if m.Wall != 0 || m.ClientComputeShare != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMetricsFromRealRun(t *testing.T) {
	// End-to-end: an accounting-mode RPC run yields sensible metrics.
	sim, rec := runClient(t, platform.FastCoPs, 3, true, func(c *Conn) {
		c.CallPhase("work", func(i int) *pvm.Buffer {
			return pvm.NewBuffer().PackFloat64(67e6)
		})
	})
	m := MetricsOf(rec, 0, []int{1, 2, 3}, 0, sim.Time())
	if m.ServerComputeShare <= 0.5 {
		t.Errorf("server compute share = %v, want dominant", m.ServerComputeShare)
	}
	if m.SyncShare <= 0 {
		t.Error("no sync share recorded")
	}
	if m.LoadImbalance > 0.05 {
		t.Errorf("imbalance = %v for balanced servers", m.LoadImbalance)
	}
}
