// Package sciddle reimplements the Sciddle remote-procedure-call
// middleware of Arbenz et al. that the paper's parallel Opal is built on:
// a thin RPC layer over PVM in a single-client / multiple-server setting.
// A client connects to a set of server tasks, each running a Service of
// named handlers; calls pack their arguments into PVM buffers, the server
// stub dispatches to the handler and ships the reply back.
//
// Two aspects the paper contributes are reproduced faithfully:
//
//   - Overlap control (Section 3.3).  In the original Sciddle, requests,
//     server computation and replies overlap freely, which makes the
//     communication, computation and idle times of a phase impossible to
//     separate.  In accounting mode the runtime inserts two PVM barriers
//     per call phase — one after all requests are delivered, one after all
//     handlers finish — trading a small slowdown (the paper measured <5%)
//     for exact attribution.  The barriers "do not actually cause, but
//     merely expose the contention" of single-client/multi-server
//     communication.
//
//   - Middleware-integrated performance monitoring (Section 3.2).  The
//     client connection keeps per-method statistics (call and return
//     times, volumes) and every task carries an hpm.Monitor, so the
//     counters live at the same abstraction level as the RPCs.
package sciddle

import (
	"errors"
	"fmt"
	"time"

	"opalperf/internal/pvm"
	"opalperf/internal/telemetry"
)

// Protocol tags, allocated above the application range.
const (
	tagRequest = pvm.ReservedTagBase + iota
	tagReplyBase
)

// Reserved method names.
const (
	methodStop = "_sciddle_stop"
)

// Handler is one exported server subroutine: it consumes the unpacked
// request buffer and returns the reply buffer (nil for a void reply).
type Handler func(t pvm.Task, req *pvm.Buffer) *pvm.Buffer

// Service is a set of named handlers exported by a server, the runtime
// equivalent of a Sciddle interface specification.
type Service struct {
	Name     string
	handlers map[string]Handler
	order    []string
}

// NewService creates an empty service.
func NewService(name string) *Service {
	return &Service{Name: name, handlers: make(map[string]Handler)}
}

// Register adds a handler under the given method name.  Registering a
// duplicate name panics: interfaces are static in Sciddle.
func (s *Service) Register(method string, h Handler) {
	if _, dup := s.handlers[method]; dup {
		panic(fmt.Sprintf("sciddle: duplicate method %q in service %s", method, s.Name))
	}
	s.handlers[method] = h
	s.order = append(s.order, method)
}

// Methods returns the registered method names in registration order.
func (s *Service) Methods() []string { return append([]string(nil), s.order...) }

// ServeOptions configure a server loop.
type ServeOptions struct {
	// Accounting enables the paper's barrier-separated timing mode.  It
	// must match the client's setting.
	Accounting bool
	// Parties is the barrier size (servers + client); required when
	// Accounting is set.
	Parties int
	// Quit, when non-nil, is a cooperative kill switch: the loop polls it
	// between requests and returns once it is closed, without waiting for
	// the client's stop request.  Chaos tests use it to kill live servers
	// (a goroutine cannot be killed from outside).  Polling needs a
	// fabric with real receive deadlines (the network fabric); on the
	// simulated and local fabrics RecvTimeout never expires, so Quit only
	// takes effect if the session itself dies.
	Quit <-chan struct{}
	// PollInterval is the receive deadline used while watching Quit
	// (default 25ms).
	PollInterval time.Duration
}

// Serve runs the server loop on task t until the client sends a stop
// request, the Quit channel closes, or the session dies.  In accounting
// mode each request is bracketed by the two phase barriers described in
// the package comment.
func Serve(t pvm.Task, svc *Service, opt ServeOptions) {
	if opt.Accounting && opt.Parties < 2 {
		panic("sciddle: accounting mode needs Parties >= 2")
	}
	var voidReply *pvm.Buffer
	phase := 0
	for {
		req, src, ok := serveRecv(t, opt)
		if !ok {
			return
		}
		callID, err := req.UnpackInt()
		if err != nil {
			panic(fmt.Sprintf("sciddle: malformed request: %v", err))
		}
		method, err := req.UnpackString()
		if err != nil {
			panic(fmt.Sprintf("sciddle: malformed request: %v", err))
		}
		if method == methodStop {
			// Acknowledge and leave; no barriers around shutdown.
			t.Send(src, replyTag(callID), pvm.NewBuffer())
			return
		}
		h := svc.handlers[method]
		if h == nil {
			panic(fmt.Sprintf("sciddle: service %s has no method %q", svc.Name, method))
		}
		if opt.Accounting {
			t.Barrier(barrierKey(phase, "call"), opt.Parties)
		}
		reply := h(t, req)
		if reply == nil {
			// Void reply: reuse one empty buffer for every acknowledgement.
			// Reset is safe here because the client has finished with the
			// previous acknowledgement before this handler could run again.
			if voidReply == nil {
				voidReply = pvm.NewBuffer()
			}
			reply = voidReply.Reset()
		}
		if opt.Accounting {
			t.Barrier(barrierKey(phase, "done"), opt.Parties)
			phase++
		}
		t.Send(src, replyTag(callID), reply)
	}
}

// serveRecv blocks for the next request, honouring the quit switch.  The
// boolean result is false when the loop should exit: the quit channel
// closed, or the session died under a deadline-aware fabric.
func serveRecv(t pvm.Task, opt ServeOptions) (*pvm.Buffer, int, bool) {
	if opt.Quit == nil {
		b, src, _ := t.Recv(pvm.AnySrc, tagRequest)
		return b, src, true
	}
	poll := opt.PollInterval
	if poll <= 0 {
		poll = 25 * time.Millisecond
	}
	for {
		select {
		case <-opt.Quit:
			return nil, 0, false
		default:
		}
		b, src, _, err := pvm.RecvDeadline(t, pvm.AnySrc, tagRequest, poll)
		if err == nil {
			return b, src, true
		}
		if !errors.Is(err, pvm.ErrRecvTimeout) {
			return nil, 0, false
		}
	}
}

func replyTag(callID int) int { return tagReplyBase + 1 + callID }

// Phase barrier keys alternate between two constant pairs instead of
// embedding the phase number, so steady-state phases allocate no key
// strings.  Reuse is safe: a vm barrier is deleted the instant its last
// party arrives, and no party can enter the phase k+2 "call" barrier
// before it has passed the phase k+1 "done" barrier — by which time the
// phase k barriers (the previous users of the same keys) are long gone.
// Client and servers index by the same per-connection phase counter, so
// the parity always agrees.
var phaseKeys = [2][2]string{
	{"sciddle/even/call", "sciddle/even/done"},
	{"sciddle/odd/call", "sciddle/odd/done"},
}

func barrierKey(phase int, point string) string {
	if point == "call" {
		return phaseKeys[phase&1][0]
	}
	return phaseKeys[phase&1][1]
}

// MethodStats aggregates the client-side cost of one method, as the
// instrumented middleware reports it.
type MethodStats struct {
	Method   string
	Calls    int
	Retries  int // idempotent resends after a reply deadline expired
	BytesOut int
	BytesIn  int
	// TCall is client time spent transmitting requests (the t_call terms
	// of eq. 7); TReturn is client time spent in Recv for replies,
	// including waiting (the t_return terms of eqs. 8-9 plus idle).
	TCall   float64
	TReturn float64

	// Cached telemetry handles, resolved once per method at first call so
	// the hot paths skip the vec lookups.  Nil-safe is not needed: stat()
	// always fills them.
	tLat                *telemetry.Histogram
	tRetries, tTimeouts *telemetry.Counter
	tBytesOut, tBytesIn *telemetry.Counter
}

// ServerError reports that one server stopped answering: its reply
// deadline expired through every retry, or the session to it died.  The
// Server index identifies the failed server so a fault-tolerant client
// can drop it and redistribute its work.
type ServerError struct {
	Server int   // index in the connection's server list at failure time
	TID    int   // the server's task id
	Err    error // the underlying transport error
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("sciddle: server %d (tid %d): %v", e.Server, e.TID, e.Err)
}

func (e *ServerError) Unwrap() error { return e.Err }

// Conn is the client side of a Sciddle session: an ordered set of server
// tasks exporting the same service.
type Conn struct {
	t          pvm.Task
	servers    []int
	dropped    []int // TIDs removed by DropServer, stopped best-effort at Close
	seq        int
	phase      int
	accounting bool
	// callTimeout bounds the wait for each reply; callRetries is the
	// number of idempotent resends before the server is declared dead.
	// Zero timeout means wait forever (the classic Sciddle behaviour).
	callTimeout time.Duration
	callRetries int
	stats       map[string]*MethodStats
	statOrder   []string
	// Steady-state scratch of CallPhasePacked: per-server request buffers
	// reset and repacked each phase, plus call-id and reply collections.
	reqBufs []*pvm.Buffer
	callIDs []int
	callT0s []float64 // per-server issue times for the latency histogram
	replies []*pvm.Buffer
	// Level-of-detail state (see lod.go): macro replay enabled, the
	// accounting latch, and reusable macro-call scratch.
	lod          bool
	lodSusp      bool
	macroAcct    bool
	lodMacro     int // phases replayed as macro-events on this connection
	lodFallback  int // phases that wanted macro replay but ran fine-grained
	macroFleet   []int // fleet the memoized entries were resolved for
	macroCalls   []pvm.MacroCall
	macroEntries []pvm.DirectEntry
	macroExecs   []func(pvm.Task) int
	macroTimes   pvm.MacroTimes
}

// Connect builds a connection from a client task to its servers.
func Connect(t pvm.Task, servers []int) *Conn {
	return &Conn{t: t, servers: append([]int(nil), servers...), stats: make(map[string]*MethodStats)}
}

// SetAccounting toggles the barrier-separated timing mode.  It must match
// the servers' ServeOptions and be set before the first call.
func (c *Conn) SetAccounting(on bool) {
	if on && (c.callTimeout > 0 || c.callRetries > 0) {
		panic("sciddle: accounting mode is incompatible with call timeouts (a retried call would desynchronize the phase barriers)")
	}
	c.accounting = on
}

// SetCallTimeout bounds every reply wait of the error-returning call
// paths (WaitErr, CallErr, CallPhasePackedErr): after d without a reply
// the request is resent up to retries times — safe because Sciddle
// handlers are pure functions of their arguments, so at-least-once
// delivery cannot corrupt server state — and when the last resend times
// out the call fails with a *ServerError.  d = 0 restores the classic
// wait-forever behaviour.  Incompatible with accounting mode: a resend
// would enter an extra phase barrier and desynchronize the parties.
//
// On fabrics without real deadlines (simulated, local) replies cannot be
// lost and the timeout never fires, so enabling it there is a no-op —
// which keeps simulated runs deterministic.
func (c *Conn) SetCallTimeout(d time.Duration, retries int) {
	if c.accounting && (d > 0 || retries > 0) {
		panic("sciddle: accounting mode is incompatible with call timeouts (a retried call would desynchronize the phase barriers)")
	}
	if retries < 0 {
		retries = 0
	}
	c.callTimeout = d
	c.callRetries = retries
}

// DropServer removes the server at index i from the connection after it
// has been declared dead.  Subsequent phases run over the survivors, and
// server indices above i shift down by one.  The dropped task — which may
// in fact still be alive if the timeout was a false positive — receives a
// best-effort stop request at Close.  Incompatible with accounting mode,
// whose barrier party counts are fixed at spawn time.
func (c *Conn) DropServer(i int) {
	if c.accounting {
		panic("sciddle: DropServer is incompatible with accounting mode")
	}
	if i < 0 || i >= len(c.servers) {
		panic(fmt.Sprintf("sciddle: server index %d out of range", i))
	}
	c.dropped = append(c.dropped, c.servers[i])
	c.servers = append(c.servers[:i], c.servers[i+1:]...)
}

// ReplaceServer swaps the server at index i for a freshly spawned
// replacement with task id tid.  The old TID is retired to the dropped
// list (it receives a best-effort stop at Close, in case the declared
// death was a timeout false positive) and tid takes over the same index,
// so server indices — and with them any rank-indexed work distribution —
// are preserved across a respawn.  Incompatible with accounting mode,
// like DropServer.
func (c *Conn) ReplaceServer(i, tid int) {
	if c.accounting {
		panic("sciddle: ReplaceServer is incompatible with accounting mode")
	}
	if i < 0 || i >= len(c.servers) {
		panic(fmt.Sprintf("sciddle: server index %d out of range", i))
	}
	c.dropped = append(c.dropped, c.servers[i])
	c.servers[i] = tid
}

// Server returns the TID of the server at index i.
func (c *Conn) Server(i int) int { return c.servers[i] }

// Accounting reports whether accounting mode is active.
func (c *Conn) Accounting() bool { return c.accounting }

// Servers returns the server TIDs.
func (c *Conn) Servers() []int { return append([]int(nil), c.servers...) }

// NumServers returns the number of servers.
func (c *Conn) NumServers() int { return len(c.servers) }

func (c *Conn) stat(method string) *MethodStats {
	s := c.stats[method]
	if s == nil {
		s = &MethodStats{
			Method:    method,
			tLat:      telemetry.RPCLatency.With(method),
			tRetries:  telemetry.RPCRetries.With(method),
			tTimeouts: telemetry.RPCTimeouts.With(method),
			tBytesOut: telemetry.RPCBytesOut.With(method),
			tBytesIn:  telemetry.RPCBytesIn.With(method),
		}
		c.stats[method] = s
		c.statOrder = append(c.statOrder, method)
	}
	return s
}

// Stats returns per-method statistics in first-call order.
func (c *Conn) Stats() []*MethodStats {
	out := make([]*MethodStats, 0, len(c.statOrder))
	for _, m := range c.statOrder {
		out = append(out, c.stats[m])
	}
	return out
}

// Pending is an outstanding asynchronous call.
type Pending struct {
	c      *Conn
	index  int // server index at call time
	server int
	callID int
	method string
	req    *pvm.Buffer // retained for idempotent retry
	t0     float64     // issue time, for the call-latency histogram
	done   bool
	reply  *pvm.Buffer
}

// CallAsync issues a request to server index i (0-based position in the
// connection's server list) and returns immediately.
func (c *Conn) CallAsync(i int, method string, args *pvm.Buffer) *Pending {
	if i < 0 || i >= len(c.servers) {
		panic(fmt.Sprintf("sciddle: server index %d out of range", i))
	}
	if args == nil {
		args = pvm.NewBuffer()
	}
	callID := c.seq
	c.seq++
	req := pvm.NewBuffer().PackInt(callID).PackString(method)
	appendBuffer(req, args)
	st := c.stat(method)
	t0 := c.t.Now()
	c.t.Send(c.servers[i], tagRequest, req)
	st.TCall += c.t.Now() - t0
	st.Calls++
	st.BytesOut += req.Bytes()
	st.tBytesOut.Add(uint64(req.Bytes()))
	return &Pending{c: c, index: i, server: c.servers[i], callID: callID, method: method, req: req, t0: t0}
}

// Wait blocks until the reply arrives and returns it.  Waiting twice
// returns the same reply.
func (p *Pending) Wait() *pvm.Buffer {
	if p.done {
		return p.reply
	}
	st := p.c.stat(p.method)
	t0 := p.c.t.Now()
	b, _, _ := p.c.t.Recv(p.server, replyTag(p.callID))
	now := p.c.t.Now()
	st.TReturn += now - t0
	st.BytesIn += b.Bytes()
	st.tBytesIn.Add(uint64(b.Bytes()))
	st.tLat.Observe(now - p.t0)
	telemetry.MatrixRecordLatency(p.c.t.TID(), p.server, now-p.t0)
	pvm.ReportFlow(p.c.t, p.method, p.server, p.t0, now)
	p.reply = b
	p.done = true
	return b
}

// WaitErr is Wait with the connection's call timeout applied: when the
// reply deadline expires the request is resent (same call id — handlers
// are idempotent, and call ids are never reused, so a duplicate reply
// simply lingers unmatched) up to the configured retry count, and a
// server that stays silent yields a *ServerError instead of a hang.
func (p *Pending) WaitErr() (*pvm.Buffer, error) {
	if p.done {
		return p.reply, nil
	}
	st := p.c.stat(p.method)
	b, err := p.c.recvReply(p.index, p.server, p.callID, p.req, st)
	if err != nil {
		return nil, err
	}
	now := p.c.t.Now()
	st.tLat.Observe(now - p.t0)
	telemetry.MatrixRecordLatency(p.c.t.TID(), p.server, now-p.t0)
	pvm.ReportFlow(p.c.t, p.method, p.server, p.t0, now)
	p.reply = b
	p.done = true
	return b, nil
}

// recvReply waits for one reply under the call timeout, resending req on
// each expiry.  index and tid identify the server for the error report.
func (c *Conn) recvReply(index, tid, callID int, req *pvm.Buffer, st *MethodStats) (*pvm.Buffer, error) {
	for attempt := 0; ; attempt++ {
		t0 := c.t.Now()
		b, _, _, err := pvm.RecvDeadline(c.t, tid, replyTag(callID), c.callTimeout)
		st.TReturn += c.t.Now() - t0
		if err == nil {
			st.BytesIn += b.Bytes()
			st.tBytesIn.Add(uint64(b.Bytes()))
			return b, nil
		}
		if errors.Is(err, pvm.ErrRecvTimeout) {
			st.tTimeouts.Add(1)
		}
		if !errors.Is(err, pvm.ErrRecvTimeout) || attempt >= c.callRetries || req == nil {
			telemetry.Emit("rpc_server_dead", telemetry.F{
				"method": st.Method, "server": index, "tid": tid, "attempts": attempt + 1,
			})
			return nil, &ServerError{Server: index, TID: tid, Err: err}
		}
		t0 = c.t.Now()
		c.t.Send(tid, tagRequest, req)
		st.TCall += c.t.Now() - t0
		st.Retries++
		st.tRetries.Add(1)
		telemetry.Emit("rpc_retry", telemetry.F{
			"method": st.Method, "server": index, "tid": tid, "attempt": attempt + 1,
		})
	}
}

// Call is the synchronous convenience wrapper.
func (c *Conn) Call(i int, method string, args *pvm.Buffer) *pvm.Buffer {
	return c.CallAsync(i, method, args).Wait()
}

// CallErr is Call with transport failures surfaced as errors (see
// SetCallTimeout) instead of unbounded waits.
func (c *Conn) CallErr(i int, method string, args *pvm.Buffer) (*pvm.Buffer, error) {
	return c.CallAsync(i, method, args).WaitErr()
}

// CallPhase performs one SPMD call phase: method is invoked once on every
// server with per-server arguments from args(i).  In overlapped mode the
// requests are all sent before any reply is awaited (the original Sciddle
// behaviour); in accounting mode the two phase barriers separate the
// request delivery, the parallel computation and the reply collection.
// Replies are returned indexed by server.
func (c *Conn) CallPhase(method string, args func(i int) *pvm.Buffer) []*pvm.Buffer {
	pending := make([]*Pending, len(c.servers))
	for i := range c.servers {
		var a *pvm.Buffer
		if args != nil {
			a = args(i)
		}
		pending[i] = c.CallAsync(i, method, a)
	}
	if c.accounting {
		parties := len(c.servers) + 1
		c.t.Barrier(barrierKey(c.phase, "call"), parties)
		c.t.Barrier(barrierKey(c.phase, "done"), parties)
		c.phase++
	}
	replies := make([]*pvm.Buffer, len(pending))
	for i, p := range pending {
		replies[i] = p.Wait()
	}
	return replies
}

// CallPhasePacked performs the same SPMD call phase as CallPhase, but
// packs each server's arguments directly into a per-server request buffer
// the connection owns and reuses across phases — the zero-allocation
// steady-state path of the parallel Opal step loop.  pack may be nil for
// argument-free calls.
//
// Reuse contract: the returned reply buffers are owned by the servers and
// the returned slice by the connection; both are valid only until the
// next call phase.  Repacking a request buffer for phase k+1 is safe
// because the phase protocol is synchronous — every server has unpacked
// its phase-k request before it sends the phase-k reply, and the client
// holds all phase-k replies before starting phase k+1.
func (c *Conn) CallPhasePacked(method string, pack func(i int, args *pvm.Buffer)) []*pvm.Buffer {
	if replies, ok := c.tryMacroPhase(method, pack); ok {
		return replies
	}
	c.ensurePhaseScratch()
	st := c.stat(method)
	for i := range c.servers {
		req := c.reqBufs[i].Reset()
		callID := c.seq
		c.seq++
		c.callIDs[i] = callID
		req.PackInt(callID).PackString(method)
		if pack != nil {
			pack(i, req)
		}
		t0 := c.t.Now()
		c.callT0s[i] = t0
		c.t.Send(c.servers[i], tagRequest, req)
		st.TCall += c.t.Now() - t0
		st.Calls++
		st.BytesOut += req.Bytes()
		st.tBytesOut.Add(uint64(req.Bytes()))
	}
	if c.accounting {
		parties := len(c.servers) + 1
		c.t.Barrier(barrierKey(c.phase, "call"), parties)
		c.t.Barrier(barrierKey(c.phase, "done"), parties)
		c.phase++
	}
	for i := range c.servers {
		t0 := c.t.Now()
		b, _, _ := c.t.Recv(c.servers[i], replyTag(c.callIDs[i]))
		now := c.t.Now()
		st.TReturn += now - t0
		st.BytesIn += b.Bytes()
		st.tBytesIn.Add(uint64(b.Bytes()))
		st.tLat.Observe(now - c.callT0s[i])
		telemetry.MatrixRecordLatency(c.t.TID(), c.servers[i], now-c.callT0s[i])
		pvm.ReportFlow(c.t, method, c.servers[i], c.callT0s[i], now)
		c.replies[i] = b
	}
	return c.replies
}

// CallPhasePackedErr is CallPhasePacked with transport failures surfaced
// as errors: every reply wait runs under the call timeout, and the first
// server that stays silent through its retries aborts the collection with
// a *ServerError naming it.  Replies already collected are discarded and
// late replies from the remaining servers linger unmatched (call ids are
// never reused), so the caller may drop the failed server and simply redo
// the phase — Sciddle handlers are idempotent.  Only available with
// accounting off; the reuse contract of CallPhasePacked applies.
func (c *Conn) CallPhasePackedErr(method string, pack func(i int, args *pvm.Buffer)) ([]*pvm.Buffer, error) {
	if c.accounting {
		panic("sciddle: CallPhasePackedErr is incompatible with accounting mode")
	}
	if replies, ok := c.tryMacroPhase(method, pack); ok {
		return replies, nil
	}
	c.ensurePhaseScratch()
	st := c.stat(method)
	for i := range c.servers {
		req := c.reqBufs[i].Reset()
		callID := c.seq
		c.seq++
		c.callIDs[i] = callID
		req.PackInt(callID).PackString(method)
		if pack != nil {
			pack(i, req)
		}
		t0 := c.t.Now()
		c.callT0s[i] = t0
		c.t.Send(c.servers[i], tagRequest, req)
		st.TCall += c.t.Now() - t0
		st.Calls++
		st.BytesOut += req.Bytes()
		st.tBytesOut.Add(uint64(req.Bytes()))
	}
	for i := range c.servers {
		b, err := c.recvReply(i, c.servers[i], c.callIDs[i], c.reqBufs[i], st)
		if err != nil {
			return nil, err
		}
		now := c.t.Now()
		st.tLat.Observe(now - c.callT0s[i])
		telemetry.MatrixRecordLatency(c.t.TID(), c.servers[i], now-c.callT0s[i])
		pvm.ReportFlow(c.t, method, c.servers[i], c.callT0s[i], now)
		c.replies[i] = b
	}
	return c.replies, nil
}

// Close sends a stop request to every server and collects the
// acknowledgements.  Servers dropped after a timeout also get a
// best-effort stop — a false-positive drop leaves a live server loop
// behind, and this lets it exit — waited on only as long as the call
// timeout allows.  The connection must not be used afterwards.
func (c *Conn) Close() {
	pending := make([]*Pending, len(c.servers))
	for i := range c.servers {
		pending[i] = c.CallAsync(i, methodStop, nil)
	}
	for _, p := range pending {
		if c.callTimeout > 0 {
			p.WaitErr() // a server dying during shutdown is not an error worth hanging for
		} else {
			p.Wait()
		}
	}
	for _, tid := range c.dropped {
		callID := c.seq
		c.seq++
		req := pvm.NewBuffer().PackInt(callID).PackString(methodStop)
		c.t.Send(tid, tagRequest, req)
		if c.callTimeout > 0 {
			pvm.RecvDeadline(c.t, tid, replyTag(callID), c.callTimeout)
		}
	}
}

// appendBuffer re-packs all items of src onto dst (the stub layer packs
// args into a fresh buffer; the RPC layer prefixes the header).
func appendBuffer(dst, src *pvm.Buffer) {
	r := src.Reader()
	for i := 0; i < src.Items(); i++ {
		if err := r.CopyNext(dst); err != nil {
			panic(err)
		}
	}
}
