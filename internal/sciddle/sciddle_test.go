package sciddle

import (
	"fmt"
	"math"
	"testing"

	"opalperf/internal/hpm"
	"opalperf/internal/platform"
	"opalperf/internal/pvm"
	"opalperf/internal/trace"
)

// echoService doubles a float and reports its instance.
func echoService() *Service {
	svc := NewService("echo")
	svc.Register("double", func(t pvm.Task, req *pvm.Buffer) *pvm.Buffer {
		x := req.MustFloat64()
		return pvm.NewBuffer().PackFloat64(2 * x).PackInt(t.Instance())
	})
	svc.Register("work", func(t pvm.Task, req *pvm.Buffer) *pvm.Buffer {
		flops := req.MustFloat64()
		t.SetWorkingSet(8 << 20) // in core: nominal rate
		t.Charge("work", hpm.Ops{Mul: flops})
		return pvm.NewBuffer().PackFloat64(flops)
	})
	return svc
}

func runClient(t *testing.T, pl func() *platform.Platform, nsrv int, accounting bool,
	client func(c *Conn)) (*pvm.SimVM, *trace.Recorder) {
	t.Helper()
	rec := trace.NewRecorder()
	s := pvm.NewSimVM(pl(), rec)
	s.SpawnRoot("client", func(ct pvm.Task) {
		tids := ct.Spawn("server", nsrv, func(st pvm.Task) {
			Serve(st, echoService(), ServeOptions{Accounting: accounting, Parties: nsrv + 1})
		})
		c := Connect(ct, tids)
		c.SetAccounting(accounting)
		client(c)
		c.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func TestSyncCall(t *testing.T) {
	runClient(t, platform.FastCoPs, 3, false, func(c *Conn) {
		for i := 0; i < c.NumServers(); i++ {
			rep := c.Call(i, "double", pvm.NewBuffer().PackFloat64(float64(i+1)))
			if got := rep.MustFloat64(); got != float64(2*(i+1)) {
				panic(fmt.Sprintf("server %d: %v", i, got))
			}
			if inst := rep.MustInt(); inst != i {
				panic(fmt.Sprintf("instance = %d, want %d", inst, i))
			}
		}
	})
}

func TestAsyncCallsOverlap(t *testing.T) {
	// In overlapped mode a phase on p servers each burning F flops takes
	// ~F/rate (plus comm), not p*F/rate: the servers run concurrently.
	const nsrv = 4
	flops := 67e6 // 1 virtual second on FastCoPs
	s, _ := runClient(t, platform.FastCoPs, nsrv, false, func(c *Conn) {
		replies := c.CallPhase("work", func(i int) *pvm.Buffer {
			return pvm.NewBuffer().PackFloat64(flops)
		})
		if len(replies) != nsrv {
			panic("wrong reply count")
		}
	})
	if wall := s.Time(); wall < 0.9 || wall > 1.5 {
		t.Errorf("wall = %v, want ~1s (overlapped servers)", wall)
	}
}

func TestCallPhaseAccountingMode(t *testing.T) {
	const nsrv = 3
	flops := 67e6
	s, rec := runClient(t, platform.FastCoPs, nsrv, true, func(c *Conn) {
		for phase := 0; phase < 2; phase++ {
			c.CallPhase("work", func(i int) *pvm.Buffer {
				return pvm.NewBuffer().PackFloat64(flops)
			})
		}
	})
	b := trace.ComputeBreakdown(rec, 0, []int{1, 2, 3}, s.Time())
	// Each server computes 2 x 1s.  The client's wait at the done barrier
	// equals the servers' parallel computation, which the breakdown
	// already accounts under ParComp, so Idle (the residual) stays near
	// zero for perfectly balanced servers.
	if b.ParComp < 1.9 || b.ParComp > 2.1 {
		t.Errorf("par comp = %v, want ~2", b.ParComp)
	}
	if b.Sync <= 0 {
		t.Error("accounting mode should record sync time")
	}
	if b.Idle > 0.05 {
		t.Errorf("idle = %v, want ~0 for balanced servers", b.Idle)
	}
	if math.Abs(b.Sum()-b.Wall) > 1e-9 {
		t.Errorf("accounted %v != wall %v", b.Sum(), b.Wall)
	}
}

func TestImbalanceSurfacesAsIdle(t *testing.T) {
	// Servers with unequal work: the client (and the fast servers) wait
	// for the slowest; the residual idle equals max-mean parallel time.
	const nsrv = 2
	s, rec := runClient(t, platform.FastCoPs, nsrv, true, func(c *Conn) {
		c.CallPhase("work", func(i int) *pvm.Buffer {
			// Server 0: 1s, server 1: 3s.
			return pvm.NewBuffer().PackFloat64(67e6 * float64(1+2*i))
		})
	})
	b := trace.ComputeBreakdown(rec, 0, []int{1, 2}, s.Time())
	if b.ParComp < 1.9 || b.ParComp > 2.1 {
		t.Errorf("mean par comp = %v, want ~2", b.ParComp)
	}
	if b.MaxParComp < 2.9 || b.MaxParComp > 3.1 {
		t.Errorf("max par comp = %v, want ~3", b.MaxParComp)
	}
	if b.Idle < 0.9 || b.Idle > 1.1 {
		t.Errorf("idle = %v, want ~1s (imbalance max-mean)", b.Idle)
	}
	if imb := b.Imbalance(); imb < 0.4 || imb > 0.6 {
		t.Errorf("imbalance = %v, want ~0.5", imb)
	}
}

func TestAccountingOverheadSmall(t *testing.T) {
	// The paper accepts <5% slowdown for accounting mode; with balanced
	// servers the overhead here is just the barrier costs.
	const nsrv = 4
	flops := 67e7 // 10 virtual seconds per server
	run := func(acct bool) float64 {
		s, _ := runClient(t, platform.FastCoPs, nsrv, acct, func(c *Conn) {
			c.CallPhase("work", func(i int) *pvm.Buffer {
				return pvm.NewBuffer().PackFloat64(flops)
			})
		})
		return s.Time()
	}
	over, acct := run(false), run(true)
	if acct < over {
		t.Errorf("accounting run %v faster than overlapped %v", acct, over)
	}
	if (acct-over)/over > 0.05 {
		t.Errorf("accounting overhead %.2f%% exceeds the paper's 5%% bound",
			100*(acct-over)/over)
	}
}

func TestMethodStats(t *testing.T) {
	runClient(t, platform.J90, 2, false, func(c *Conn) {
		c.CallPhase("double", func(i int) *pvm.Buffer {
			return pvm.NewBuffer().PackFloat64(1)
		})
		c.Call(0, "double", pvm.NewBuffer().PackFloat64(2))
		st := c.Stats()
		if len(st) != 1 || st[0].Method != "double" {
			panic(fmt.Sprintf("stats = %+v", st))
		}
		if st[0].Calls != 3 {
			panic(fmt.Sprintf("calls = %d, want 3", st[0].Calls))
		}
		if st[0].BytesOut == 0 || st[0].BytesIn == 0 {
			panic("volumes not recorded")
		}
		if st[0].TCall <= 0 {
			panic("TCall not recorded")
		}
	})
}

func TestStatsSeparatePerMethod(t *testing.T) {
	runClient(t, platform.J90, 1, false, func(c *Conn) {
		c.Call(0, "double", pvm.NewBuffer().PackFloat64(1))
		c.Call(0, "work", pvm.NewBuffer().PackFloat64(100))
		if n := len(c.Stats()); n != 2 {
			panic(fmt.Sprintf("methods = %d, want 2", n))
		}
	})
}

func TestUnknownMethodPanicsServerSide(t *testing.T) {
	s := pvm.NewSimVM(platform.J90(), nil)
	s.SpawnRoot("client", func(ct pvm.Task) {
		tids := ct.Spawn("server", 1, func(st pvm.Task) {
			defer func() {
				if recover() == nil {
					panic("expected panic for unknown method")
				}
			}()
			Serve(st, echoService(), ServeOptions{})
		})
		c := Connect(ct, tids)
		c.CallAsync(0, "no-such-method", nil)
		// Do not wait: the server dies; just end the client.
	})
	// The server panics in its goroutine; the vm run may deadlock (client
	// gone, server dead) — both are acceptable ends for this negative
	// test, so only check we do not hang.
	defer func() { recover() }()
	_ = s.Run()
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	svc := NewService("s")
	svc.Register("m", nil)
	svc.Register("m", nil)
}

func TestServerIndexOutOfRangePanics(t *testing.T) {
	runClient(t, platform.J90, 1, false, func(c *Conn) {
		defer func() {
			if recover() == nil {
				panic("expected panic for bad index")
			}
		}()
		c.Call(5, "double", nil)
	})
}

func TestPendingWaitIdempotent(t *testing.T) {
	runClient(t, platform.J90, 1, false, func(c *Conn) {
		p := c.CallAsync(0, "double", pvm.NewBuffer().PackFloat64(4))
		r1 := p.Wait()
		r2 := p.Wait()
		if r1 != r2 {
			panic("Wait not idempotent")
		}
	})
}

func TestServiceMethods(t *testing.T) {
	svc := echoService()
	ms := svc.Methods()
	if len(ms) != 2 || ms[0] != "double" || ms[1] != "work" {
		t.Errorf("methods = %v", ms)
	}
}

func TestAccountingNeedsParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Serve(nil, echoService(), ServeOptions{Accounting: true, Parties: 1})
}

func TestJ90CommunicationDominatesSmallCalls(t *testing.T) {
	// On the J90's 10ms/3MB/s PVM, 10 empty-ish RPC round trips cost at
	// least 10 * 2 * 10ms of communication.
	s, _ := runClient(t, platform.J90, 1, false, func(c *Conn) {
		for i := 0; i < 10; i++ {
			c.Call(0, "double", pvm.NewBuffer().PackFloat64(1))
		}
	})
	if s.Time() < 0.2 {
		t.Errorf("wall = %v, want >= 0.2s from per-message overheads", s.Time())
	}
}

func TestVolumeScalesWithPayload(t *testing.T) {
	var small, big int
	runClient(t, platform.J90, 1, false, func(c *Conn) {
		c.Call(0, "double", pvm.NewBuffer().PackFloat64(1))
		small = c.Stats()[0].BytesOut
	})
	runClient(t, platform.J90, 1, false, func(c *Conn) {
		c.CallAsync(0, "double", pvm.NewBuffer().PackFloat64(1))
		// Pad with a second, larger call of the same method.
		p := c.CallAsync(0, "double", pvm.NewBuffer().PackFloat64(1))
		_ = p
		big = c.Stats()[0].BytesOut
	})
	if big <= small {
		t.Errorf("bytes out: %d then %d, want growth", small, big)
	}
	_ = math.Abs
}

func TestReplaceServerPreservesIndex(t *testing.T) {
	rec := trace.NewRecorder()
	s := pvm.NewSimVM(platform.FastCoPs(), rec)
	s.SpawnRoot("client", func(ct pvm.Task) {
		tids := ct.Spawn("server", 2, func(st pvm.Task) {
			Serve(st, echoService(), ServeOptions{})
		})
		c := Connect(ct, tids)
		rep := ct.Spawn("server-replacement", 1, func(st pvm.Task) {
			Serve(st, echoService(), ServeOptions{})
		})
		old := c.Server(1)
		c.ReplaceServer(1, rep[0])
		if c.NumServers() != 2 {
			panic("width changed by ReplaceServer")
		}
		if c.Server(1) != rep[0] || c.Server(0) != tids[0] {
			panic(fmt.Sprintf("servers = %v, want [%d %d]", c.Servers(), tids[0], rep[0]))
		}
		if old == c.Server(1) {
			panic("replacement TID equals the retired one")
		}
		// Calls through the replaced index reach the replacement (which,
		// as a singleton spawn, reports instance 0).
		b := c.Call(1, "double", pvm.NewBuffer().PackFloat64(3))
		if got := b.MustFloat64(); got != 6 {
			panic(fmt.Sprintf("double via replacement = %v, want 6", got))
		}
		if inst := b.MustInt(); inst != 0 {
			panic(fmt.Sprintf("replacement instance = %d, want 0", inst))
		}
		// Close must also stop the retired server (via the dropped list)
		// or the simulation would never drain.
		c.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaceServerPanics(t *testing.T) {
	mustPanic := func(fn func()) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		fn()
		return
	}
	runClient(t, platform.FastCoPs, 2, true, func(c *Conn) {
		if !mustPanic(func() { c.ReplaceServer(0, 999) }) {
			panic("ReplaceServer under accounting did not panic")
		}
	})
	runClient(t, platform.FastCoPs, 2, false, func(c *Conn) {
		if !mustPanic(func() { c.ReplaceServer(2, 999) }) {
			panic("out-of-range ReplaceServer did not panic")
		}
	})
}
