// Package stats provides the small set of descriptive statistics and
// regression helpers the experimental methodology of the paper needs
// (repeated-measurement variability, least-squares quality metrics).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; zero for fewer than two
// points.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// Std returns the sample standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the extrema; zeros for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median; zero for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (1.96 sigma / sqrt(n)).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(n))
}

// RelErr returns |a-b| / |b|; +Inf when b is zero and a is not, 0 when
// both are zero.
func RelErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// MAPE returns the mean absolute percentage error of predictions vs
// measurements, skipping zero measurements.
func MAPE(pred, meas []float64) float64 {
	if len(pred) != len(meas) {
		panic(fmt.Sprintf("stats: MAPE length mismatch %d vs %d", len(pred), len(meas)))
	}
	var s float64
	var n int
	for i := range pred {
		if meas[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-meas[i]) / math.Abs(meas[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// R2 returns the coefficient of determination of predictions vs
// measurements (1 = perfect fit).
func R2(pred, meas []float64) float64 {
	if len(pred) != len(meas) {
		panic(fmt.Sprintf("stats: R2 length mismatch %d vs %d", len(pred), len(meas)))
	}
	if len(meas) == 0 {
		return 0
	}
	m := Mean(meas)
	var ssRes, ssTot float64
	for i := range meas {
		d := meas[i] - pred[i]
		ssRes += d * d
		t := meas[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a and slope b.
func LinearFit(x, y []float64) (a, b float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: LinearFit length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return my, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// Pearson returns the correlation coefficient of two samples.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
