package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func eq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !eq(Mean(xs), 5) {
		t.Errorf("mean = %v", Mean(xs))
	}
	if !eq(Variance(xs), 32.0/7.0) {
		t.Errorf("variance = %v", Variance(xs))
	}
	if !eq(Std(xs), math.Sqrt(32.0/7.0)) {
		t.Errorf("std = %v", Std(xs))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CI95(nil) != 0 || Median(nil) != 0 {
		t.Error("empty slices should give zeros")
	}
	if Variance([]float64{5}) != 0 || CI95([]float64{5}) != 0 {
		t.Error("singleton variance should be zero")
	}
	if Mean([]float64{5}) != 5 || Median([]float64{5}) != 5 {
		t.Error("singleton mean/median wrong")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("minmax = %v %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty minmax should be zeros")
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if !eq(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median wrong")
	}
	if !eq(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Error("even median wrong")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestRelErr(t *testing.T) {
	if !eq(RelErr(11, 10), 0.1) {
		t.Error("RelErr wrong")
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{11, 9, 5}, []float64{10, 10, 0})
	if !eq(got, 0.1) {
		t.Errorf("MAPE = %v, want 0.1 (zero measurement skipped)", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestR2(t *testing.T) {
	meas := []float64{1, 2, 3, 4}
	if !eq(R2(meas, meas), 1) {
		t.Error("perfect fit should have R2 = 1")
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if !eq(R2(mean, meas), 0) {
		t.Error("mean predictor should have R2 = 0")
	}
	if R2([]float64{1, 1}, []float64{3, 3}) != 0 {
		t.Error("constant measurement, wrong prediction should give 0")
	}
	if R2([]float64{3, 3}, []float64{3, 3}) != 1 {
		t.Error("constant measurement, exact prediction should give 1")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{5, 7, 9, 11} // y = 5 + 2x
	a, b := LinearFit(x, y)
	if !eq(a, 5) || !eq(b, 2) {
		t.Errorf("fit = %v + %v x", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if !eq(a, 2) || b != 0 {
		t.Errorf("constant-x fit = %v, %v", a, b)
	}
	a, b = LinearFit(nil, nil)
	if a != 0 || b != 0 {
		t.Error("empty fit should be zeros")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if !eq(Pearson(x, x), 1) {
		t.Error("self correlation should be 1")
	}
	y := []float64{4, 3, 2, 1}
	if !eq(Pearson(x, y), -1) {
		t.Error("reversed correlation should be -1")
	}
	if Pearson(x, []float64{5, 5, 5, 5}) != 0 {
		t.Error("constant series correlation should be 0")
	}
}

// Property: mean is between min and max; variance is non-negative.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		lo, hi := MinMax(xs)
		return m >= lo-1e-9 && m <= hi+1e-9 && Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers a and b exactly (up to fp error) on
// noise-free lines.
func TestLinearFitRecoversLineProperty(t *testing.T) {
	f := func(a8, b8 int8, n uint8) bool {
		n = n%20 + 2
		a, b := float64(a8), float64(b8)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
			y[i] = a + b*x[i]
		}
		ga, gb := LinearFit(x, y)
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
