// Package supervise implements the self-healing supervisor of the
// cluster: a small state machine that keeps a fixed-width server fleet
// at its configured width by respawning a replacement task for every
// server that dies, within a configurable respawn budget.
//
// The supervisor does not probe liveness itself.  Death signals are
// derived from the machinery the lower layers already run — Sciddle call
// timeouts with idempotent retries on the network fabric (which in turn
// ride on the transport's receive deadlines and heartbeats), and
// administrative kill schedules on the deterministic fabrics, where
// replies cannot be lost and a timeout would never fire.  The client
// reports each detected death through OnDeath; the supervisor decides
// the rung of the recovery ladder:
//
//	heal    — budget permitting, spawn a replacement that inherits the
//	          dead server's rank in the pair distribution, so the
//	          restored fleet computes the exact same partial sums;
//	degrade — budget exhausted: refuse, and let the caller shrink the
//	          fleet onto the survivors (PR 2's graceful degradation).
//
// The third rung — restart from a periodic checkpoint — lives above the
// supervisor, in md.Options.CheckpointEvery and harness.RunWithRestart.
package supervise

import (
	"fmt"

	"opalperf/internal/telemetry"
)

// State is the supervisor's position in the recovery ladder.
type State int

const (
	// Healthy: the fleet is at its configured width.
	Healthy State = iota
	// Healing: a death has been observed and a replacement is being
	// spawned and re-initialized; further deaths cascade within the same
	// healing window.
	Healing
	// Degraded: the respawn budget is exhausted; subsequent deaths
	// shrink the fleet instead of healing it.  Terminal.
	Degraded
)

var stateNames = [...]string{"healthy", "healing", "degraded"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// SpawnFunc starts one replacement server task and returns its TID.
// The argument is the zero-based replacement counter (the k-th respawn
// of the run), which callers use to key chaos kill switches past the
// original fleet's indices.
type SpawnFunc func(replacement int) int

// Options configure a supervisor.
type Options struct {
	// Width is the configured fleet width p; every heal restores it.
	Width int
	// MaxRespawns bounds the total replacements the supervisor may spawn
	// over the run.  <= 0 means unlimited.
	MaxRespawns int
	// Spawn starts one replacement task.  Required.
	Spawn SpawnFunc
}

// Supervisor tracks fleet health and spawns replacements.  It is driven
// from the single client goroutine that detects deaths and is therefore
// unsynchronized.
type Supervisor struct {
	opts     Options
	state    State
	respawns int
	perRank  []int // respawn count per rank
	lost     []int // TIDs of every server declared dead
}

// New creates a supervisor for a fleet of opts.Width servers.
func New(opts Options) *Supervisor {
	if opts.Width <= 0 {
		panic(fmt.Sprintf("supervise: fleet width must be positive, have %d", opts.Width))
	}
	if opts.Spawn == nil {
		panic("supervise: Spawn is required")
	}
	s := &Supervisor{opts: opts, perRank: make([]int, opts.Width)}
	s.publishState()
	return s
}

// setState performs a state transition and publishes it to the telemetry
// plane: the gauge and /healthz reflect the new rung, the journal records
// the transition, and entering Degraded trips the flight-recorder dump.
func (s *Supervisor) setState(to State) {
	if s.state == to {
		return
	}
	from := s.state
	s.state = to
	s.publishState()
	telemetry.Emit("supervisor_"+to.String(), telemetry.F{
		"from": from.String(), "respawns": s.respawns, "deaths": len(s.lost),
	})
}

func (s *Supervisor) publishState() {
	telemetry.SupState.Set(int64(s.state))
	telemetry.SetHealth(s.state.String(), s.state != Degraded)
}

// State returns the supervisor's current rung.
func (s *Supervisor) State() State { return s.state }

// Width returns the configured fleet width.
func (s *Supervisor) Width() int { return s.opts.Width }

// Respawns returns the total replacements spawned so far.
func (s *Supervisor) Respawns() int { return s.respawns }

// RespawnsOf returns how many times the server holding rank has been
// replaced.
func (s *Supervisor) RespawnsOf(rank int) int {
	if rank < 0 || rank >= len(s.perRank) {
		return 0
	}
	return s.perRank[rank]
}

// Lost returns the TIDs of every server declared dead, in death order.
func (s *Supervisor) Lost() []int { return append([]int(nil), s.lost...) }

// CanRespawn reports whether the respawn budget permits another heal.
func (s *Supervisor) CanRespawn() bool {
	if s.state == Degraded {
		return false
	}
	return s.opts.MaxRespawns <= 0 || s.respawns < s.opts.MaxRespawns
}

// OnDeath records that the server holding rank (with task id tid)
// stopped answering and, budget permitting, spawns its replacement and
// returns the new TID.  ok == false means the budget is exhausted: the
// supervisor enters Degraded for good and the caller should shrink the
// fleet instead (graceful degradation).
func (s *Supervisor) OnDeath(rank, tid int) (newTID int, ok bool) {
	if rank < 0 || rank >= s.opts.Width {
		panic(fmt.Sprintf("supervise: rank %d out of range for width %d", rank, s.opts.Width))
	}
	if !s.CanRespawn() {
		s.setState(Degraded)
		return 0, false
	}
	s.lost = append(s.lost, tid)
	telemetry.SupDeaths.Add(1)
	s.setState(Healing)
	newTID = s.opts.Spawn(s.respawns)
	s.respawns++
	s.perRank[rank]++
	telemetry.SupRespawns.Add(1)
	return newTID, true
}

// Healed marks the end of a healing window: the replacement is
// re-initialized, the fleet is back at its configured width.
func (s *Supervisor) Healed() {
	if s.state == Healing {
		s.setState(Healthy)
	}
}
