package supervise

import "testing"

// fakeSpawner hands out sequential TIDs starting at base and records the
// replacement counters it was called with.
type fakeSpawner struct {
	base  int
	calls []int
}

func (f *fakeSpawner) spawn(k int) int {
	f.calls = append(f.calls, k)
	return f.base + len(f.calls) - 1
}

func TestSupervisorHealCycle(t *testing.T) {
	sp := &fakeSpawner{base: 100}
	s := New(Options{Width: 3, Spawn: sp.spawn})
	if got := s.State(); got != Healthy {
		t.Fatalf("fresh supervisor state = %v, want healthy", got)
	}
	if !s.CanRespawn() {
		t.Fatal("fresh supervisor cannot respawn")
	}

	tid, ok := s.OnDeath(1, 42)
	if !ok || tid != 100 {
		t.Fatalf("OnDeath = (%d, %v), want (100, true)", tid, ok)
	}
	if s.State() != Healing {
		t.Fatalf("state after OnDeath = %v, want healing", s.State())
	}

	// A cascading death during the same healing window heals too.
	tid, ok = s.OnDeath(0, 43)
	if !ok || tid != 101 {
		t.Fatalf("cascading OnDeath = (%d, %v), want (101, true)", tid, ok)
	}

	s.Healed()
	if s.State() != Healthy {
		t.Fatalf("state after Healed = %v, want healthy", s.State())
	}
	if got := s.Respawns(); got != 2 {
		t.Fatalf("Respawns = %d, want 2", got)
	}
	if got := s.RespawnsOf(1); got != 1 {
		t.Fatalf("RespawnsOf(1) = %d, want 1", got)
	}
	if got := s.RespawnsOf(2); got != 0 {
		t.Fatalf("RespawnsOf(2) = %d, want 0", got)
	}
	lost := s.Lost()
	if len(lost) != 2 || lost[0] != 42 || lost[1] != 43 {
		t.Fatalf("Lost = %v, want [42 43]", lost)
	}
	if len(sp.calls) != 2 || sp.calls[0] != 0 || sp.calls[1] != 1 {
		t.Fatalf("spawn replacement counters = %v, want [0 1]", sp.calls)
	}
}

func TestSupervisorBudgetExhaustionDegrades(t *testing.T) {
	sp := &fakeSpawner{base: 200}
	s := New(Options{Width: 2, MaxRespawns: 1, Spawn: sp.spawn})

	if _, ok := s.OnDeath(0, 7); !ok {
		t.Fatal("first death within budget must heal")
	}
	s.Healed()

	if s.CanRespawn() {
		t.Fatal("budget of 1 must be exhausted after one respawn")
	}
	if _, ok := s.OnDeath(1, 8); ok {
		t.Fatal("death beyond budget must refuse to heal")
	}
	if s.State() != Degraded {
		t.Fatalf("state after refusal = %v, want degraded", s.State())
	}

	// Degraded is terminal: Healed does not resurrect, further deaths
	// keep refusing, and the refused death is not counted as lost here
	// (the degradation path records it).
	s.Healed()
	if s.State() != Degraded {
		t.Fatalf("Healed must not leave degraded, state = %v", s.State())
	}
	if _, ok := s.OnDeath(0, 9); ok {
		t.Fatal("degraded supervisor must never heal again")
	}
	if got := s.Respawns(); got != 1 {
		t.Fatalf("Respawns = %d, want 1", got)
	}
	if got := len(s.Lost()); got != 1 {
		t.Fatalf("len(Lost) = %d, want 1 (refused deaths are not recorded)", got)
	}
}

func TestSupervisorUnlimitedBudget(t *testing.T) {
	sp := &fakeSpawner{base: 300}
	s := New(Options{Width: 1, MaxRespawns: 0, Spawn: sp.spawn})
	for i := 0; i < 10; i++ {
		if _, ok := s.OnDeath(0, i); !ok {
			t.Fatalf("unlimited budget refused respawn %d", i)
		}
		s.Healed()
	}
	if got := s.Respawns(); got != 10 {
		t.Fatalf("Respawns = %d, want 10", got)
	}
}

func TestSupervisorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero width", func() { New(Options{Width: 0, Spawn: func(int) int { return 0 }}) })
	mustPanic("nil spawn", func() { New(Options{Width: 1}) })
	s := New(Options{Width: 2, Spawn: func(int) int { return 0 }})
	mustPanic("rank out of range", func() { s.OnDeath(2, 0) })
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Healthy: "healthy", Healing: "healing", Degraded: "degraded", State(9): "State(9)"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
