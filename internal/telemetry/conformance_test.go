package telemetry

import (
	"strings"
	"testing"
)

// Prometheus text-exposition conformance: the format specifies exactly
// which characters are escaped where (label values: backslash, quote,
// newline; HELP text: backslash, newline — quotes stay literal), that
// every family is announced by # HELP then # TYPE in that order, and the
// registry additionally promises output stable across renders.  The
// golden below pins all of it at once.
func TestPrometheusExpositionGolden(t *testing.T) {
	withEnabled(t)
	prevRun := Run()
	SetRun("")
	t.Cleanup(func() { SetRun(prevRun) })

	r := NewRegistry()
	c := r.Counter("t_conf_events_total", "events with \\ and \"quotes\"\nand a newline")
	c.Add(3)
	cv := r.CounterVec("t_conf_kinds_total", "events by kind", "kind")
	cv.With(`a\b`).Add(1)
	cv.With("nl\nend").Add(3)
	cv.With(`q"uote`).Add(2)
	g := r.FGauge("t_conf_level", "a float level")
	g.Set(1.5)
	gv := r.FGaugeVec("t_conf_residual_seconds", "residual by term", "term")
	gv.With("comm").Set(-0.25)
	gv.With("par").Set(0.5)

	want := `# HELP t_conf_events_total events with \\ and "quotes"\nand a newline
# TYPE t_conf_events_total counter
t_conf_events_total 3
# HELP t_conf_kinds_total events by kind
# TYPE t_conf_kinds_total counter
t_conf_kinds_total{kind="a\\b"} 1
t_conf_kinds_total{kind="nl\nend"} 3
t_conf_kinds_total{kind="q\"uote"} 2
# HELP t_conf_level a float level
# TYPE t_conf_level gauge
t_conf_level 1.5
# HELP t_conf_residual_seconds residual by term
# TYPE t_conf_residual_seconds gauge
t_conf_residual_seconds{term="comm"} -0.25
t_conf_residual_seconds{term="par"} 0.5
`
	var first strings.Builder
	r.WritePrometheus(&first)
	if first.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", first.String(), want)
	}
	// Rendering is a pure read: a second pass is byte-identical.
	var second strings.Builder
	r.WritePrometheus(&second)
	if second.String() != first.String() {
		t.Fatalf("exposition not stable across renders:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// Label escaping must not touch characters the format treats as literal
// (tabs, unicode) — the trap %q-based escaping falls into.
func TestPromLabelEscapeLeavesLiteralsAlone(t *testing.T) {
	for in, want := range map[string]string{
		"plain":      "plain",
		"tab\there":  "tab\there",
		"unicode µs": "unicode µs",
		`back\slash`: `back\\slash`,
		`qu"ote`:     `qu\"ote`,
		"new\nline":  `new\nline`,
	} {
		if got := promLabelEscape(in); got != want {
			t.Errorf("promLabelEscape(%q) = %q, want %q", in, got, want)
		}
	}
	// HELP escaping leaves quotes literal.
	if got := promHelpEscape("a \"b\"\nc\\d"); got != `a "b"\nc\\d` {
		t.Errorf("promHelpEscape = %q", got)
	}
}

func TestFGaugeSetValue(t *testing.T) {
	r := NewRegistry()
	g := r.FGauge("t_fg", "x")
	if g.Value() != 0 {
		t.Fatalf("zero value = %g", g.Value())
	}
	// FGauge.Set is deliberately not gated on the plane switch: oracle
	// windows are rare and /modelz must reflect the last one regardless.
	SetEnabled(false)
	g.Set(-3.25)
	if g.Value() != -3.25 {
		t.Fatalf("value = %g, want -3.25", g.Value())
	}
	v := r.FGaugeVec("t_fgv", "x", "term")
	if v.With("par") != v.With("par") {
		t.Fatal("FGaugeVec.With should return a stable child handle")
	}
	v.With("par").Set(7)
	if v.With("par").Value() != 7 {
		t.Fatalf("vec child value = %g", v.With("par").Value())
	}
}
