package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The HTTP plane: /metrics in Prometheus text format, /healthz reflecting
// the supervisor's state, and the standard pprof handlers — mounted on a
// private mux so library users never pollute http.DefaultServeMux.

// extra holds endpoints registered by other packages (e.g. the model
// oracle's /modelz) so they are mounted on every Handler/Serve without
// telemetry importing them.
var (
	extraMu sync.Mutex
	extra   = map[string]http.Handler{}
)

// Handle registers an extra endpoint served by Handler and Serve.  The
// registry is consulted per request, so registering before or after the
// server starts both work — cmd/opal serves early and arms the oracle's
// /modelz later.  Registering the same pattern again replaces the
// previous handler; a nil handler removes it.  Patterns are exact paths
// and must not shadow the built-in endpoints.
func Handle(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	if h == nil {
		delete(extra, pattern)
		return
	}
	extra[pattern] = h
}

// Handler returns the telemetry endpoints:
//
//	/metrics       Prometheus text exposition of the Default registry
//	/healthz       JSON health: 200 while healthy/healing, 503 once degraded
//	/debug/pprof/  net/http/pprof profiles
//
// plus any endpoints registered via Handle (e.g. the oracle's /modelz).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		extraMu.Lock()
		h := extra[r.URL.Path]
		extraMu.Unlock()
		if h == nil {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state, ok := Health()
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"state\":%q,\"ok\":%v,\"run\":%q,\"respawns\":%d,\"deaths\":%d}\n",
			state, ok, Run(), SupRespawns.Value(), SupDeaths.Value())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry endpoints on addr (e.g. "localhost:9100";
// port 0 picks a free one) and returns the bound address and a stop
// function.  The server runs until stop is called or the process exits.
func Serve(addr string) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
