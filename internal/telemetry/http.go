package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// The HTTP plane: /metrics in Prometheus text format, /healthz reflecting
// the supervisor's state, and the standard pprof handlers — mounted on a
// private mux so library users never pollute http.DefaultServeMux.

// extra holds endpoints registered by other packages (e.g. the model
// oracle's /modelz) so they are mounted on every Handler/Serve without
// telemetry importing them.
var (
	extraMu sync.Mutex
	extra   = map[string]http.Handler{}
)

// Handle registers an extra endpoint served by Handler and Serve.  The
// registry is consulted per request, so registering before or after the
// server starts both work — cmd/opal serves early and arms the oracle's
// /modelz later.  Registering the same pattern again replaces the
// previous handler; a nil handler removes it.  Patterns are exact paths
// and must not shadow the built-in endpoints.
func Handle(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	if h == nil {
		delete(extra, pattern)
		return
	}
	extra[pattern] = h
}

// Handler returns the telemetry endpoints:
//
//	/metrics       Prometheus text exposition of the Default registry
//	/healthz       JSON health: 200 while healthy/healing, 503 once degraded
//	/streamz       server-sent events: coalesced telemetry snapshots
//	/debug/pprof/  net/http/pprof profiles
//
// plus any endpoints registered via Handle (e.g. the oracle's /modelz).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		extraMu.Lock()
		h := extra[r.URL.Path]
		extraMu.Unlock()
		if h == nil {
			http.NotFound(w, r)
			return
		}
		h.ServeHTTP(w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Default.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		state, ok := Health()
		comps, compsOK := ComponentHealth()
		ok = ok && compsOK
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"state\":%q,\"ok\":%v,\"run\":%q,\"respawns\":%d,\"deaths\":%d",
			state, ok, Run(), SupRespawns.Value(), SupDeaths.Value())
		if len(comps) > 0 {
			fmt.Fprint(w, ",\"components\":{")
			for i, c := range comps {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%q:{\"detail\":%q,\"ok\":%v}", c.Name, c.Detail, c.OK)
			}
			fmt.Fprint(w, "}")
		}
		fmt.Fprint(w, "}\n")
	})
	mux.HandleFunc("/streamz", streamzHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server hardening knobs.  Package variables rather than parameters so
// Serve keeps its one-argument shape; the slow-loris regression test
// lowers readHeaderTimeout to keep itself fast.
var (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 30 * time.Second
	shutdownGrace     = 5 * time.Second
)

// Serve starts the telemetry endpoints on addr (e.g. "localhost:9100";
// port 0 picks a free one) and returns the bound address and a stop
// function.  The server runs until stop is called or the process exits.
//
// The server is hardened against misbehaving clients: header, read and
// write timeouts bound every connection (a slow-loris peer is cut off at
// readHeaderTimeout), and stop drains gracefully — in-flight responses
// get shutdownGrace to finish before the listener is torn down.
func Serve(addr string) (bound string, stop func(), err error) {
	return ServeHandler(addr, Handler())
}

// ServeHandler is Serve with a caller-supplied handler — the control
// plane mounts its API this way so its endpoints share the hardened
// server and graceful shutdown with the plain telemetry plane.
func ServeHandler(addr string, h http.Handler) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
	}
	go srv.Serve(ln)
	stop = func() {
		// SSE handlers block on their subscription channel; close the
		// streams first so they return and Shutdown can drain cleanly.
		CloseStreams()
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Grace expired with connections still open: cut them.
			srv.Close()
		}
	}
	return ln.Addr().String(), stop, nil
}
