package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	withEnabled(t)
	RPCLatency.With("nbint").Observe(0.01)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE opal_sciddle_call_seconds histogram",
		`opal_sciddle_call_seconds_bucket{method="nbint",le=`,
		"# TYPE opal_supervisor_state gauge",
		"opal_pvm_messages_sent_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzReflectsSupervisorState(t *testing.T) {
	ResetHealth()
	t.Cleanup(ResetHealth)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("idle /healthz status %d", code)
	}
	var h struct {
		State string `json:"state"`
		OK    bool   `json:"ok"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h.State != "idle" || !h.OK {
		t.Fatalf("idle health = %+v", h)
	}

	SetHealth("degraded", false)
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status %d, want 503", code)
	}
	if !strings.Contains(body, `"state":"degraded"`) {
		t.Fatalf("degraded body %q", body)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.80s", code, body)
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unexpected status %d", resp.StatusCode)
	}
}
