package telemetry

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	withEnabled(t)
	RPCLatency.With("nbint").Observe(0.01)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE opal_sciddle_call_seconds histogram",
		`opal_sciddle_call_seconds_bucket{method="nbint",le=`,
		"# TYPE opal_supervisor_state gauge",
		"opal_pvm_messages_sent_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHealthzReflectsSupervisorState(t *testing.T) {
	ResetHealth()
	t.Cleanup(ResetHealth)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("idle /healthz status %d", code)
	}
	var h struct {
		State string `json:"state"`
		OK    bool   `json:"ok"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h.State != "idle" || !h.OK {
		t.Fatalf("idle health = %+v", h)
	}

	SetHealth("degraded", false)
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status %d, want 503", code)
	}
	if !strings.Contains(body, `"state":"degraded"`) {
		t.Fatalf("degraded body %q", body)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.80s", code, body)
	}
}

func TestServe(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unexpected status %d", resp.StatusCode)
	}
}

// TestServeCutsSlowLoris is the slow-loris regression test for the
// hardened server: a client that dribbles an incomplete request header
// forever is cut off at readHeaderTimeout instead of pinning a
// connection (and, pre-hardening, a goroutine) for the daemon's
// lifetime.
func TestServeCutsSlowLoris(t *testing.T) {
	prev := readHeaderTimeout
	readHeaderTimeout = 150 * time.Millisecond
	defer func() { readHeaderTimeout = prev }()

	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// An eternally unfinished request line: no terminating CRLFCRLF.
	if _, err := conn.Write([]byte("GET /metrics HTTP/1.1\r\nHost: x\r\nX-Drip: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered an unfinished request header")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server still holding the slow-loris connection after %v", time.Since(start))
	}
	// The cut must come from readHeaderTimeout, not some longer budget.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow-loris connection lived %v, want ~readHeaderTimeout", elapsed)
	}

	// The server is still healthy for well-behaved clients afterwards.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-loris request: status %d", resp.StatusCode)
	}
}

// TestServeGracefulStop pins the shutdown half of the hardening: stop()
// lets an in-flight response finish instead of resetting it.
func TestServeGracefulStop(t *testing.T) {
	release := make(chan struct{})
	inFlight := make(chan struct{})
	addr, stop, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-release
		w.Write([]byte("done"))
	}))
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body string
		err  error
	}
	resC := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			resC <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resC <- result{body: string(b), err: err}
	}()
	<-inFlight
	stopped := make(chan struct{})
	go func() { stop(); close(stopped) }()
	// Shutdown is in progress; the in-flight handler may still answer.
	close(release)
	res := <-resC
	if res.err != nil || res.body != "done" {
		t.Fatalf("in-flight request during graceful stop: body=%q err=%v", res.body, res.err)
	}
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("stop() hung")
	}
}
