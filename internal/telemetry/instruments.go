package telemetry

// The standard instruments of the telemetry plane, wired through the PVM
// fabrics, the Sciddle RPC layer, the md engine, the fault plane and the
// supervisor.  They live here as package variables so instrument sites
// stay one-liners and every binary exposes the same metric names.

// LatencyBuckets covers call and step latencies from 1 µs to ~67 s in
// factor-4 steps — wide enough for both virtual (simulated platform) and
// real (host) seconds.
var LatencyBuckets = ExpBuckets(1e-6, 4, 13)

var (
	// PVM fabric traffic (all fabrics: simulated, local, TCP).
	PvmMsgsSent  = Default.Counter("opal_pvm_messages_sent_total", "PVM messages sent.")
	PvmBytesSent = Default.Counter("opal_pvm_bytes_sent_total", "PVM payload bytes sent.")
	PvmBarriers  = Default.Counter("opal_pvm_barriers_total", "PVM barrier entries.")
	// TCP transport hardening events.
	PvmReconnects = Default.Counter("opal_pvm_reconnects_total", "TCP sessions resumed after a broken connection.")
	PvmHeartbeats = Default.Counter("opal_pvm_heartbeats_total", "TCP heartbeats sent.")

	// Sciddle RPC plane, split by method.
	RPCLatency  = Default.HistogramVec("opal_sciddle_call_seconds", "Per-call latency from request send to reply receipt (virtual seconds on the simulated fabric).", "method", LatencyBuckets)
	RPCRetries  = Default.CounterVec("opal_sciddle_retries_total", "Idempotent request resends after a reply deadline expired.", "method")
	RPCTimeouts = Default.CounterVec("opal_sciddle_timeouts_total", "Reply deadline expiries; each one triggers a resend or, once retries are exhausted, a dead-server declaration.", "method")
	RPCBytesOut = Default.CounterVec("opal_sciddle_bytes_out_total", "Request bytes sent.", "method")
	RPCBytesIn  = Default.CounterVec("opal_sciddle_bytes_in_total", "Reply bytes received.", "method")

	// md engine step machinery.
	MDSteps          = Default.Counter("opal_md_steps_total", "Completed simulation steps.")
	MDStepSeconds    = Default.Histogram("opal_md_step_seconds", "Per-step duration (virtual seconds on the simulated fabric).", LatencyBuckets)
	MDUpdateSeconds  = Default.Histogram("opal_md_pairlist_update_seconds", "Pair-list update phase duration.", LatencyBuckets)
	MDCheckpointSecs = Default.Histogram("opal_md_checkpoint_seconds", "Checkpoint capture+sink duration (host wall seconds).", LatencyBuckets)
	MDCheckpoints    = Default.Counter("opal_md_checkpoints_total", "Periodic checkpoints written.")

	// Supervisor / recovery ladder.
	SupState    = Default.Gauge("opal_supervisor_state", "Supervisor rung: 0 healthy, 1 healing, 2 degraded.")
	SupDeaths   = Default.Counter("opal_supervisor_deaths_total", "Server deaths reported to the supervisor.")
	SupRespawns = Default.Counter("opal_supervisor_respawns_total", "Replacement servers spawned.")
	Recoveries  = Default.Counter("opal_md_recoveries_total", "Graceful-degradation recoveries (fleet shrunk onto survivors).")

	// Fault injection plane, split by kind.
	FaultsInjected = Default.CounterVec("opal_faults_injected_total", "Faults injected, by kind.", "kind")

	// Level-of-detail plane: phases replayed as analytic macro-events vs
	// phases that fell back to fine-grained execution (fault plane
	// active, kill window, non-quiescent kernel, missing dispatcher).
	LoDMacroPhases    = Default.Counter("opal_lod_macro_phases_total", "RPC phases replayed as analytic macro-events.")
	LoDFallbackPhases = Default.Counter("opal_lod_fallback_phases_total", "RPC phases that wanted macro replay but ran fine-grained.")

	// Journal plane.
	JournalDropped = Default.Counter("opal_journal_dropped_total", "Journal events dropped from the JSONL stream by the byte cap.")
	// Gauges mirror the journal's drop and dump state onto /metrics even
	// while the counter plane is gated off (Gauge.Set is ungated), so
	// byte-cap truncation and post-mortem dumps are visible to a scrape,
	// not just in code.
	JournalDroppedEvents = Default.Gauge("opal_journal_dropped_events", "Journal events dropped from the JSONL stream so far (byte cap).")
	FlightDumps          = Default.Gauge("opal_flight_dumps", "Flight-recorder dumps written so far (triggered and crash-path).")

	// Model oracle (internal/oracle): live predicted-vs-measured loop.
	OracleWindows   = Default.Counter("opal_oracle_windows_total", "Oracle windows evaluated (predicted vs measured).")
	OracleAnomalies = Default.CounterVec("opal_oracle_anomalies_total", "Oracle anomaly events, by model term.", "term")
	OracleResidual  = Default.FGaugeVec("opal_oracle_residual_seconds", "Latest per-window residual (measured minus predicted virtual seconds), by model term.", "term")
	OracleAbsResid  = Default.HistogramVec("opal_oracle_abs_residual_seconds", "Absolute per-window residual (virtual seconds), by model term.", "term", LatencyBuckets)
	OracleParam     = Default.FGaugeVec("opal_oracle_machine_param", "Latest recalibrated machine parameter value, by parameter name (a1, b1, a2, a3, a4, b5).", "param")
	OracleRecals    = Default.Counter("opal_oracle_recalibrations_total", "Successful sliding-window recalibrations.")
)
