package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The run journal: a structured JSONL stream of lifecycle events — faults
// injected, deaths detected, respawns, recoveries, checkpoint writes and
// resumes, supervisor transitions — plus a bounded in-memory flight
// recorder holding the last N rendered events for post-mortem dumps when
// the run degrades or crashes.
//
// Events are rare (per-lifecycle, never per-message), so the journal
// favours readability and determinism over write throughput: one mutex,
// one rendered line per event, fields sorted by key.

// F carries the variable fields of one event.
type F = map[string]any

// Journal writes events as JSONL and mirrors them into a flight ring.
type Journal struct {
	mu      sync.Mutex
	w       io.Writer // nil: flight-recorder only
	flight  *Flight
	buf     []byte
	dumpW   io.Writer       // destination for triggered flight dumps
	dumpOn  map[string]bool // event types that trigger a dump
	started time.Time
	// maxBytes caps the JSONL stream (<= 0: unbounded).  Once a rendered
	// line would push written past the cap it is dropped from the stream —
	// the flight ring still records it — and dropped counts it, so a
	// misbehaving run cannot fill the disk while the journal stays honest
	// about what is missing.
	maxBytes int64
	written  int64
	dropped  uint64
	// clock stamps events; nil means time.Now.  Tests and deterministic
	// scenario replays pin it so that two identical runs render
	// byte-identical journal lines.
	clock func() time.Time
	// mirror, when set, receives every rendered event line — the archive
	// ingestion hook.  A plain function keeps telemetry free of an archive
	// import; the byte cap does not apply to the mirror (the warehouse has
	// its own retention via compaction).
	mirror func(run, typ string, wall time.Time, line string)
}

// current is the installed journal; Emit no-ops while it is nil.
var current atomic.Pointer[Journal]

// StartJournal installs a journal writing JSONL events to w (which may be
// nil for a flight-recorder-only journal) with a flight ring of the last
// flightN events (<= 0 selects the default of 256).  It replaces any
// previously installed journal and emits a journal_start event carrying
// the run ID.
func StartJournal(w io.Writer, flightN int) *Journal {
	if flightN <= 0 {
		flightN = 256
	}
	j := &Journal{
		w:       w,
		flight:  NewFlight(flightN),
		dumpOn:  map[string]bool{"supervisor_degraded": true},
		started: time.Now(),
	}
	current.Store(j)
	Emit("journal_start", F{"flight_capacity": flightN})
	return j
}

// StopJournal uninstalls the current journal (tests, end of run).
func StopJournal() { current.Store(nil) }

// Current returns the installed journal, or nil.
func Current() *Journal { return current.Load() }

// SetDumpWriter directs triggered flight dumps (by default on the
// supervisor_degraded event) to w.  nil disables triggered dumps.
func (j *Journal) SetDumpWriter(w io.Writer) {
	j.mu.Lock()
	j.dumpW = w
	j.mu.Unlock()
}

// SetDumpTrigger replaces the set of event types that trigger a flight
// dump to the dump writer.
func (j *Journal) SetDumpTrigger(types ...string) {
	j.mu.Lock()
	j.dumpOn = make(map[string]bool, len(types))
	for _, t := range types {
		j.dumpOn[t] = true
	}
	j.mu.Unlock()
}

// Flight returns the journal's flight recorder.
func (j *Journal) Flight() *Flight { return j.flight }

// SetClock replaces the wall-clock source stamping events (nil restores
// time.Now).  With a fixed clock and a fixed run ID, the journal of a
// deterministic run is byte-identical across replays — the contract the
// scenario byte-identity tests pin.
func (j *Journal) SetClock(fn func() time.Time) {
	j.mu.Lock()
	j.clock = fn
	j.mu.Unlock()
}

// SetMirror installs a tap receiving every rendered event line (run ID,
// event type, wall stamp, JSONL line including trailing newline) — the
// hook the run archive ingests the journal stream through.  nil removes
// the tap.  The mirror is called under the journal mutex; it must not
// emit events itself.
func (j *Journal) SetMirror(fn func(run, typ string, wall time.Time, line string)) {
	j.mu.Lock()
	j.mirror = fn
	j.mu.Unlock()
}

// SetMaxBytes caps the journal's JSONL stream at n bytes; events past the
// cap are dropped (and counted) rather than written.  n <= 0 removes the
// cap.  The flight recorder is unaffected — it is bounded by event count
// already.
func (j *Journal) SetMaxBytes(n int64) {
	j.mu.Lock()
	j.maxBytes = n
	j.mu.Unlock()
}

// Dropped returns the number of events dropped from the JSONL stream by
// the byte cap.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Written returns the number of JSONL bytes written so far.
func (j *Journal) Written() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.written
}

// Emit records one event on the installed journal; a no-op when no
// journal is installed.  The event is stamped with the wall clock and the
// current run ID.
func Emit(typ string, fields F) {
	j := current.Load()
	if j == nil {
		return
	}
	j.Emit(typ, fields)
}

// Emit records one event: renders it once, appends it to the JSONL stream
// and the flight ring, and fires a flight dump when the event type is a
// configured trigger.
func (j *Journal) Emit(typ string, fields F) {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now
	if j.clock != nil {
		now = j.clock
	}
	wall := now()
	j.buf = appendEvent(j.buf[:0], wall, Run(), typ, fields)
	line := string(j.buf)
	j.flight.add(line)
	if j.mirror != nil {
		j.mirror(Run(), typ, wall, line)
	}
	if j.w != nil {
		if j.maxBytes > 0 && j.written+int64(len(line)) > j.maxBytes {
			j.dropped++
			JournalDropped.Add(1)
			JournalDroppedEvents.Set(int64(j.dropped))
		} else {
			io.WriteString(j.w, line)
			j.written += int64(len(line))
		}
	}
	if j.dumpW != nil && j.dumpOn[typ] {
		fmt.Fprintf(j.dumpW, "--- flight recorder dump (trigger: %s) ---\n", typ)
		j.flight.DumpTo(j.dumpW)
		fmt.Fprintf(j.dumpW, "--- end flight recorder dump ---\n")
		FlightDumps.Add(1)
	}
}

// appendEvent renders one JSONL line: wall clock, run ID and type first,
// then the variable fields sorted by key so renderings are deterministic
// and golden-testable.
func appendEvent(b []byte, wall time.Time, run, typ string, fields F) []byte {
	b = append(b, `{"wall":"`...)
	b = wall.UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, '"')
	if run != "" {
		b = append(b, `,"run":`...)
		b = appendJSONValue(b, run)
	}
	b = append(b, `,"type":`...)
	b = appendJSONValue(b, typ)
	if len(fields) > 0 {
		keys := make([]string, 0, len(fields))
		for k := range fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = append(b, ',')
			b = appendJSONValue(b, k)
			b = append(b, ':')
			b = appendJSONValue(b, fields[k])
		}
	}
	b = append(b, '}', '\n')
	return b
}

func appendJSONValue(b []byte, v any) []byte {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(b, enc...)
}

// Flight is the bounded in-memory flight recorder: a ring of the last N
// rendered journal lines, dumpable after a degradation or crash to show
// what led up to it — the post-mortem half of the journal.
type Flight struct {
	mu    sync.Mutex
	lines []string
	next  int
	full  bool
}

// NewFlight creates a flight recorder holding the last n events.
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = 256
	}
	return &Flight{lines: make([]string, n)}
}

func (f *Flight) add(line string) {
	f.mu.Lock()
	f.lines[f.next] = line
	f.next++
	if f.next == len(f.lines) {
		f.next = 0
		f.full = true
	}
	f.mu.Unlock()
}

// Events returns the recorded lines, oldest first.
func (f *Flight) Events() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	if f.full {
		out = append(out, f.lines[f.next:]...)
	}
	out = append(out, f.lines[:f.next]...)
	return out
}

// Len returns the number of recorded events (capped at capacity).
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return len(f.lines)
	}
	return f.next
}

// DumpTo writes the recorded events to w, oldest first.
func (f *Flight) DumpTo(w io.Writer) {
	for _, line := range f.Events() {
		io.WriteString(w, line)
	}
}

// DumpFlight dumps the installed journal's flight recorder to w — the
// crash-path helper cmd/opal calls from its panic handler and fatal exit.
// A no-op when no journal is installed.
func DumpFlight(w io.Writer) {
	j := current.Load()
	if j == nil {
		return
	}
	fmt.Fprintf(w, "--- flight recorder dump (%d events) ---\n", j.flight.Len())
	j.flight.DumpTo(w)
	fmt.Fprintf(w, "--- end flight recorder dump ---\n")
	FlightDumps.Add(1)
}
