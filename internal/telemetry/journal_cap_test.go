package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The byte cap bounds the JSONL stream, never corrupts it: every line
// that does reach the writer is complete, the flight recorder keeps
// rolling past the cap, and the dropped counter accounts for exactly the
// lines that are missing.
func TestJournalByteCap(t *testing.T) {
	var sb strings.Builder
	j := StartJournal(&sb, 8)
	defer StopJournal()
	const capBytes = 600
	j.SetMaxBytes(capBytes)

	const events = 50
	for i := 0; i < events; i++ {
		j.Emit("spam", F{"i": i, "pad": strings.Repeat("x", 40)})
	}

	if sb.Len() > capBytes {
		t.Fatalf("journal wrote %d bytes past the %d-byte cap", sb.Len(), capBytes)
	}
	if int64(sb.Len()) != j.Written() {
		t.Fatalf("Written() = %d, writer saw %d bytes", j.Written(), sb.Len())
	}
	if j.Dropped() == 0 {
		t.Fatal("cap was exceeded but Dropped() = 0")
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("capped journal has a partial line %q: %v", l, err)
		}
	}
	// journal_start + every spam event is either written or counted dropped.
	if got := uint64(len(lines)) + j.Dropped(); got != events+1 {
		t.Fatalf("written %d + dropped %d != emitted %d", len(lines), j.Dropped(), events+1)
	}
	// The flight recorder is bounded by count, not bytes: it must have kept
	// rolling through the drops and hold its full capacity.
	if n := j.Flight().Len(); n != 8 {
		t.Fatalf("flight recorder holds %d events, want its capacity 8", n)
	}
	last := j.Flight().Events()[7]
	if !strings.Contains(last, `"i":49`) {
		t.Fatalf("flight recorder stopped recording under the cap: last = %s", last)
	}
}

func TestJournalSetMaxBytesZeroRemovesCap(t *testing.T) {
	var sb strings.Builder
	j := StartJournal(&sb, 4)
	defer StopJournal()
	j.SetMaxBytes(1) // everything past journal_start would drop...
	j.Emit("a", nil)
	j.SetMaxBytes(0) // ...until the cap is removed
	j.Emit("b", nil)
	if !strings.Contains(sb.String(), `"type":"b"`) {
		t.Fatalf("uncapped emit missing:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), `"type":"a"`) {
		t.Fatalf("capped emit was written:\n%s", sb.String())
	}
	if j.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", j.Dropped())
	}
}

// Concurrent emitters racing trigger events must produce exactly one
// flight dump per trigger, each one intact — Emit holds the journal mutex
// across the render, the ring append and the dump, so dumps cannot
// interleave.  Run with -race to make the claim checkable.
func TestJournalConcurrentDumpTriggers(t *testing.T) {
	j := StartJournal(io.Discard, 64)
	defer StopJournal()
	var dump strings.Builder
	j.SetDumpWriter(&dump)
	j.SetDumpTrigger("degraded")

	const workers, per = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Emit("noise", F{"w": w, "i": i})
				j.Emit("degraded", F{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()

	out := dump.String()
	if got := strings.Count(out, "--- flight recorder dump (trigger: degraded) ---"); got != workers*per {
		t.Fatalf("dump headers = %d, want exactly %d (one per trigger)", got, workers*per)
	}
	if got := strings.Count(out, "--- end flight recorder dump ---"); got != workers*per {
		t.Fatalf("dump footers = %d, want %d (dumps interleaved?)", got, workers*per)
	}
}

// Extra endpoints registered via Handle are served whether they were
// registered before or after the handler was built — cmd/opal serves
// early and mounts the oracle's /modelz later.
func TestHandlerServesLateRegisteredExtras(t *testing.T) {
	srv := httptest.NewServer(Handler()) // built before anything is registered
	defer srv.Close()
	text := func(s string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { io.WriteString(w, s) })
	}

	if code, _ := get(t, srv, "/modelz-test"); code != http.StatusNotFound {
		t.Fatalf("unregistered extra served with status %d", code)
	}
	Handle("/modelz-test", text("late"))
	t.Cleanup(func() { Handle("/modelz-test", nil) })
	if code, body := get(t, srv, "/modelz-test"); code != http.StatusOK || body != "late" {
		t.Fatalf("late-registered extra: status %d body %q", code, body)
	}
	Handle("/modelz-test", text("replaced"))
	if _, body := get(t, srv, "/modelz-test"); body != "replaced" {
		t.Fatalf("re-registration did not replace: body %q", body)
	}
	Handle("/modelz-test", nil)
	if code, _ := get(t, srv, "/modelz-test"); code != http.StatusNotFound {
		t.Fatalf("removed extra still served with status %d", code)
	}
}
