package telemetry

import (
	"io"
	"strings"
	"testing"
	"time"
)

// The mirror tap receives every rendered event — run ID, type, wall stamp
// and the full JSONL line — regardless of the byte cap, and uninstalls
// cleanly.  This is the contract the run archive ingests through.
func TestJournalMirrorTap(t *testing.T) {
	var sb strings.Builder
	j := StartJournal(&sb, 8)
	defer StopJournal()

	type tap struct {
		run, typ, line string
		wall           time.Time
	}
	var got []tap
	j.SetMirror(func(run, typ string, wall time.Time, line string) {
		got = append(got, tap{run, typ, line, wall})
	})
	j.SetMaxBytes(1) // cap drops everything from the stream...
	j.Emit("evt_a", F{"k": 1})
	j.Emit("evt_b", nil)

	if len(got) != 2 {
		t.Fatalf("mirror saw %d events, want 2 (cap must not apply to the mirror)", len(got))
	}
	if got[0].typ != "evt_a" || got[1].typ != "evt_b" {
		t.Fatalf("mirror types = %s, %s", got[0].typ, got[1].typ)
	}
	if !strings.HasSuffix(got[0].line, "\n") || !strings.Contains(got[0].line, `"k":1`) {
		t.Fatalf("mirror line malformed: %q", got[0].line)
	}
	if got[0].wall.IsZero() {
		t.Fatal("mirror wall stamp is zero")
	}

	j.SetMirror(nil)
	j.Emit("evt_c", nil)
	if len(got) != 2 {
		t.Fatal("mirror still tapped after SetMirror(nil)")
	}
}

// The journal's drop count and flight-dump count surface as gauges in the
// Prometheus exposition — byte-cap truncation is visible to a scrape, not
// just in code.
func TestJournalGaugesOnMetrics(t *testing.T) {
	dumpsBefore := FlightDumps.Value()

	var sb strings.Builder
	j := StartJournal(&sb, 4)
	defer StopJournal()
	j.SetMaxBytes(1)
	for i := 0; i < 5; i++ {
		j.Emit("spam", F{"i": i})
	}
	if got := JournalDroppedEvents.Value(); got != int64(j.Dropped()) {
		t.Fatalf("dropped gauge = %d, journal dropped %d", got, j.Dropped())
	}
	if j.Dropped() == 0 {
		t.Fatal("test emitted past the cap but nothing dropped")
	}

	j.SetDumpWriter(io.Discard)
	j.SetDumpTrigger("boom")
	j.Emit("boom", nil)
	DumpFlight(io.Discard)
	if got := FlightDumps.Value() - dumpsBefore; got != 2 {
		t.Fatalf("flight-dump gauge advanced by %d, want 2 (one trigger + one crash-path dump)", got)
	}

	var prom strings.Builder
	Default.WritePrometheus(&prom)
	for _, want := range []string{
		"# TYPE opal_journal_dropped_events gauge",
		"# TYPE opal_flight_dumps gauge",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}
}
