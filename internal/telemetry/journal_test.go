package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestAppendEventDeterministic(t *testing.T) {
	wall := time.Date(2026, 8, 6, 12, 0, 1, 500e6, time.UTC)
	got := string(appendEvent(nil, wall, "r1", "respawn", F{
		"step": 3, "rank": 1, "old_tid": 2, "new_tid": 7, "vt": 0.125,
	}))
	want := `{"wall":"2026-08-06T12:00:01.5Z","run":"r1","type":"respawn","new_tid":7,"old_tid":2,"rank":1,"step":3,"vt":0.125}` + "\n"
	if got != want {
		t.Fatalf("event rendering:\n got %s\nwant %s", got, want)
	}
	// And it is valid JSON.
	var m map[string]any
	if err := json.Unmarshal([]byte(got), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if m["type"] != "respawn" || m["rank"] != 1.0 {
		t.Fatalf("round-trip mismatch: %v", m)
	}
}

func TestJournalWritesJSONL(t *testing.T) {
	var sb strings.Builder
	j := StartJournal(&sb, 8)
	defer StopJournal()
	j.Emit("fault_injected", F{"kind": "admin_kill", "rank": 0})
	j.Emit("checkpoint", F{"step": 10})

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 3 { // journal_start + 2
		t.Fatalf("want 3 JSONL lines, got %d:\n%s", len(lines), sb.String())
	}
	types := []string{}
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		types = append(types, m["type"].(string))
	}
	if types[0] != "journal_start" || types[1] != "fault_injected" || types[2] != "checkpoint" {
		t.Fatalf("unexpected event types %v", types)
	}
}

func TestEmitWithoutJournalIsNoop(t *testing.T) {
	StopJournal()
	Emit("orphan", nil) // must not panic
}

func TestFlightKeepsLastN(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.add(fmt.Sprintf("e%d\n", i))
	}
	got := f.Events()
	want := []string{"e6\n", "e7\n", "e8\n", "e9\n"}
	if len(got) != len(want) {
		t.Fatalf("flight kept %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flight[%d] = %q, want %q (oldest first)", i, got[i], want[i])
		}
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
}

func TestFlightDumpOnDegraded(t *testing.T) {
	var journal, dump strings.Builder
	j := StartJournal(&journal, 16)
	defer StopJournal()
	j.SetDumpWriter(&dump)

	j.Emit("respawn", F{"rank": 1})
	if dump.Len() != 0 {
		t.Fatalf("dump fired early:\n%s", dump.String())
	}
	j.Emit("supervisor_degraded", nil)
	out := dump.String()
	if !strings.Contains(out, "flight recorder dump") ||
		!strings.Contains(out, `"type":"respawn"`) ||
		!strings.Contains(out, `"type":"supervisor_degraded"`) {
		t.Fatalf("degradation dump missing history:\n%s", out)
	}
}

func TestDumpFlightHelper(t *testing.T) {
	var sb strings.Builder
	StartJournal(nil, 8) // flight-only journal: nil writer must be fine
	defer StopJournal()
	Emit("crash_context", F{"step": 5})
	DumpFlight(&sb)
	if !strings.Contains(sb.String(), `"type":"crash_context"`) {
		t.Fatalf("DumpFlight missing event:\n%s", sb.String())
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Fatalf("run IDs should be unique, got %q twice", a)
	}
	if len(a) < 15 {
		t.Fatalf("run ID %q suspiciously short", a)
	}
}
