package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
)

// The communication matrix: per-(src,dst) message/byte/latency cells and
// per-rank virtual-time profiles, the spatial dimension the fleet-level
// opal_pvm_* aggregates cannot show — which rank talked to which, over
// which link, and where each rank's time went (the paper's comp/comm/
// sync/pack model terms, rank-resolved).
//
// The instrument is armed separately from the metrics plane
// (EnableMatrix): the fabrics call MatrixRecord next to every
// PvmMsgsSent/PvmBytesSent increment — including the level-of-detail
// macro replay, so matrices are bit-identical under -lod — and while
// disarmed each call is one atomic load and a predicted branch.
//
// Cells are indexed by *rank*, not task id: MapRank pins a TID to a rank
// slot (the md engine maps the client to rank 0 and server i to rank
// 1+i, and re-maps a healed replacement TID onto the dead server's rank,
// so a replacement inherits its row and column).  Unmapped TIDs are
// assigned the next free rank in order of first appearance.

// matrixSegKinds mirrors vm.NumSegKinds without importing vm (telemetry
// sits below every other internal package).
const matrixSegKinds = 6

// maxMatrixRanks bounds the dense grid: a hostile or buggy TID cannot
// force an unbounded allocation.  Traffic past the cap is dropped.
const maxMatrixRanks = 1024

var matrixOn atomic.Bool

// matrixState is the dense grid.  Cell updates take the read lock and
// use atomics (concurrent fabrics send from many goroutines); growth and
// snapshots take the write lock.
type matrixState struct {
	mu   sync.RWMutex
	n    int         // current rank dimension
	rank map[int]int // tid → rank
	// n*n row-major link cells.
	msgs  []atomic.Uint64
	bytes []atomic.Uint64
	calls []atomic.Uint64 // RPC calls measured on the link
	lat   []atomic.Uint64 // summed RPC latency seconds, float bits
	// n*matrixSegKinds per-rank time profile, float bits.
	prof []atomic.Uint64
}

var matrix = &matrixState{rank: make(map[int]int)}

// EnableMatrix arms or disarms the comm-matrix instrument.  Arming does
// not clear previously accumulated cells; call ResetMatrix for a fresh
// epoch.
func EnableMatrix(on bool) { matrixOn.Store(on) }

// MatrixEnabled reports whether the comm-matrix instrument is armed.
func MatrixEnabled() bool { return matrixOn.Load() }

// ResetMatrix clears every cell, every rank profile and the TID→rank
// mapping — the start of a measurement epoch.
func ResetMatrix() {
	m := matrix
	m.mu.Lock()
	defer m.mu.Unlock()
	m.n = 0
	m.rank = make(map[int]int)
	m.msgs, m.bytes, m.calls, m.lat, m.prof = nil, nil, nil, nil, nil
}

// MapRank pins TID tid to rank — the hook the md engine uses to give the
// client rank 0, server i rank 1+i, and a healed replacement the rank of
// the server it replaces (row/column inheritance).  A no-op while the
// instrument is disarmed or the rank is out of bounds.
func MapRank(tid, rank int) {
	if !matrixOn.Load() || rank < 0 || rank >= maxMatrixRanks {
		return
	}
	m := matrix
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rank[tid] = rank
	if rank >= m.n {
		m.growLocked(rank + 1)
	}
}

// growLocked widens the grid to dimension to, re-indexing the row-major
// cells.  Caller holds the write lock.
func (m *matrixState) growLocked(to int) {
	if to <= m.n {
		return
	}
	msgs := make([]atomic.Uint64, to*to)
	bytes := make([]atomic.Uint64, to*to)
	calls := make([]atomic.Uint64, to*to)
	lat := make([]atomic.Uint64, to*to)
	prof := make([]atomic.Uint64, to*matrixSegKinds)
	for s := 0; s < m.n; s++ {
		for d := 0; d < m.n; d++ {
			old, new := s*m.n+d, s*to+d
			msgs[new].Store(m.msgs[old].Load())
			bytes[new].Store(m.bytes[old].Load())
			calls[new].Store(m.calls[old].Load())
			lat[new].Store(m.lat[old].Load())
		}
		for k := 0; k < matrixSegKinds; k++ {
			prof[s*matrixSegKinds+k].Store(m.prof[s*matrixSegKinds+k].Load())
		}
	}
	m.msgs, m.bytes, m.calls, m.lat, m.prof = msgs, bytes, calls, lat, prof
	m.n = to
}

// ranksLocked resolves both TIDs under the read lock; ok is false when
// either is unmapped (the slow path must assign it).
func (m *matrixState) ranksLocked(src, dst int) (s, d int, ok bool) {
	s, oks := m.rank[src]
	d, okd := m.rank[dst]
	return s, d, oks && okd
}

// ensureRankLocked assigns the next free rank to an unmapped TID.
// Caller holds the write lock.  Returns -1 past the grid cap.
func (m *matrixState) ensureRankLocked(tid int) int {
	if r, ok := m.rank[tid]; ok {
		return r
	}
	r := m.n
	if r >= maxMatrixRanks {
		return -1
	}
	m.growLocked(r + 1)
	m.rank[tid] = r
	return r
}

// MatrixRecord accumulates msgs messages and bytes payload bytes on the
// src→dst link.  Call sites mirror every PvmMsgsSent/PvmBytesSent
// increment exactly, so matrix totals reconcile with the aggregate
// counters.  Near-zero cost while disarmed.
func MatrixRecord(src, dst int, msgs, bytes uint64) {
	if !matrixOn.Load() {
		return
	}
	m := matrix
	m.mu.RLock()
	if s, d, ok := m.ranksLocked(src, dst); ok {
		i := s*m.n + d
		m.msgs[i].Add(msgs)
		m.bytes[i].Add(bytes)
		m.mu.RUnlock()
		return
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, d := m.ensureRankLocked(src), m.ensureRankLocked(dst)
	if s < 0 || d < 0 {
		return
	}
	i := s*m.n + d
	m.msgs[i].Add(msgs)
	m.bytes[i].Add(bytes)
}

// MatrixRecordLatency accumulates one measured RPC on the src→dst link:
// the call count and its end-to-end latency in (virtual) seconds.  The
// sciddle client calls it wherever it observes RPCLatency, on both the
// fine-grained and the macro-replay paths.
func MatrixRecordLatency(src, dst int, seconds float64) {
	if !matrixOn.Load() {
		return
	}
	m := matrix
	m.mu.RLock()
	if s, d, ok := m.ranksLocked(src, dst); ok {
		i := s*m.n + d
		m.calls[i].Add(1)
		addFloatBits(&m.lat[i], seconds)
		m.mu.RUnlock()
		return
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, d := m.ensureRankLocked(src), m.ensureRankLocked(dst)
	if s < 0 || d < 0 {
		return
	}
	i := s*m.n + d
	m.calls[i].Add(1)
	addFloatBits(&m.lat[i], seconds)
}

// RankSegment attributes seconds of classified virtual time (kind is a
// vm.SegKind value) to the rank mapped for TID tid — the per-rank
// comp/comm/sync/pack profile.  The trace recorder calls it for every
// recorded segment while the matrix is armed.
func RankSegment(tid, kind int, seconds float64) {
	if !matrixOn.Load() || kind < 0 || kind >= matrixSegKinds {
		return
	}
	m := matrix
	m.mu.RLock()
	if r, ok := m.rank[tid]; ok {
		addFloatBits(&m.prof[r*matrixSegKinds+kind], seconds)
		m.mu.RUnlock()
		return
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.ensureRankLocked(tid)
	if r < 0 {
		return
	}
	addFloatBits(&m.prof[r*matrixSegKinds+kind], seconds)
}

// addFloatBits adds v to a float64 stored as bits in an atomic word.
func addFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// MatrixLink is one non-empty cell of the communication matrix.
type MatrixLink struct {
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
	// Calls and LatSeconds cover the RPCs measured end-to-end on the
	// link (client-side issue→collect), a subset of Msgs.
	Calls      uint64  `json:"calls,omitempty"`
	LatSeconds float64 `json:"lat_seconds,omitempty"`
}

// RankProfile is one rank's classified virtual-time breakdown, the
// paper's model terms resolved per rank.  Pack is the engine's
// bookkeeping time (vm.SegOther), the t_pack term.
type RankProfile struct {
	Rank     int     `json:"rank"`
	Comp     float64 `json:"comp"`
	Comm     float64 `json:"comm"`
	Sync     float64 `json:"sync"`
	Idle     float64 `json:"idle"`
	Pack     float64 `json:"pack"`
	Recovery float64 `json:"recovery"`
}

// Busy returns the fraction of the rank's accounted time not spent idle.
func (p RankProfile) Busy() float64 {
	total := p.Comp + p.Comm + p.Sync + p.Idle + p.Pack + p.Recovery
	if total <= 0 {
		return 0
	}
	return 1 - p.Idle/total
}

// MatrixData is a point-in-time snapshot of the communication matrix:
// the non-empty links in row-major order and one profile per rank.
type MatrixData struct {
	Ranks    int           `json:"ranks"`
	Links    []MatrixLink  `json:"links"`
	Profiles []RankProfile `json:"profiles,omitempty"`
}

// MatrixSnapshot captures the current matrix.  Deterministic: links are
// emitted in row-major (src, dst) order, profiles in rank order.
func MatrixSnapshot() MatrixData {
	m := matrix
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := MatrixData{Ranks: m.n}
	for s := 0; s < m.n; s++ {
		for d := 0; d < m.n; d++ {
			i := s*m.n + d
			msgs, bytes := m.msgs[i].Load(), m.bytes[i].Load()
			calls, lat := m.calls[i].Load(), math.Float64frombits(m.lat[i].Load())
			if msgs == 0 && bytes == 0 && calls == 0 {
				continue
			}
			out.Links = append(out.Links, MatrixLink{
				Src: s, Dst: d, Msgs: msgs, Bytes: bytes,
				Calls: calls, LatSeconds: lat,
			})
		}
	}
	for r := 0; r < m.n; r++ {
		p := RankProfile{Rank: r}
		p.Comp = math.Float64frombits(m.prof[r*matrixSegKinds+0].Load())
		p.Comm = math.Float64frombits(m.prof[r*matrixSegKinds+1].Load())
		p.Sync = math.Float64frombits(m.prof[r*matrixSegKinds+2].Load())
		p.Idle = math.Float64frombits(m.prof[r*matrixSegKinds+3].Load())
		p.Pack = math.Float64frombits(m.prof[r*matrixSegKinds+4].Load())
		p.Recovery = math.Float64frombits(m.prof[r*matrixSegKinds+5].Load())
		out.Profiles = append(out.Profiles, p)
	}
	return out
}

// MatrixTotals sums every link cell — the numbers that must reconcile
// exactly with the opal_pvm_messages_sent_total / opal_pvm_bytes_sent_total
// deltas over the same epoch.
func MatrixTotals() (msgs, bytes uint64) {
	m := matrix
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := range m.msgs {
		msgs += m.msgs[i].Load()
		bytes += m.bytes[i].Load()
	}
	return msgs, bytes
}

// matrixEvery is the periodic in-run emission cadence in steps (0: only
// at run end).  The harness consults it from its AfterStep hook.
var matrixEvery atomic.Int64

// SetMatrixEmitEvery asks the harness to emit a comm_matrix/rank_profile
// journal snapshot every n completed steps (0 restores end-of-run only).
func SetMatrixEmitEvery(n int) { matrixEvery.Store(int64(n)) }

// MatrixEmitEvery returns the periodic emission cadence in steps.
func MatrixEmitEvery() int { return int(matrixEvery.Load()) }

// EmitMatrix journals the current matrix as one comm_matrix event and
// one rank_profile event (which the archive mirror warehouses like every
// journal event).  A no-op while the instrument is disarmed or empty.
func EmitMatrix() {
	if !matrixOn.Load() {
		return
	}
	snap := MatrixSnapshot()
	if snap.Ranks == 0 {
		return
	}
	Emit("comm_matrix", F{"ranks": snap.Ranks, "links": snap.Links})
	Emit("rank_profile", F{"ranks": snap.Ranks, "profiles": snap.Profiles})
}
