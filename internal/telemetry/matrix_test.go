package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// withMatrix arms a fresh matrix epoch and restores the disarmed,
// empty state afterwards.
func withMatrix(t *testing.T) {
	t.Helper()
	EnableMatrix(true)
	ResetMatrix()
	t.Cleanup(func() {
		EnableMatrix(false)
		ResetMatrix()
	})
}

func TestMatrixDisarmedIsNoOp(t *testing.T) {
	EnableMatrix(false)
	ResetMatrix()
	MatrixRecord(1, 2, 1, 100)
	MatrixRecordLatency(1, 2, 0.5)
	RankSegment(1, 0, 1.0)
	MapRank(1, 0)
	if snap := MatrixSnapshot(); snap.Ranks != 0 || len(snap.Links) != 0 {
		t.Fatalf("disarmed matrix accumulated state: %+v", snap)
	}
	if msgs, bytes := MatrixTotals(); msgs != 0 || bytes != 0 {
		t.Fatalf("disarmed totals = %d msgs, %d bytes", msgs, bytes)
	}
}

func TestMatrixRecordAndSnapshot(t *testing.T) {
	withMatrix(t)
	MapRank(100, 0)
	MapRank(200, 1)
	MapRank(300, 2)
	MatrixRecord(100, 200, 1, 64)
	MatrixRecord(100, 200, 1, 64)
	MatrixRecord(200, 100, 1, 16)
	MatrixRecord(100, 300, 3, 300)
	MatrixRecordLatency(100, 200, 0.25)
	MatrixRecordLatency(100, 200, 0.25)

	snap := MatrixSnapshot()
	if snap.Ranks != 3 {
		t.Fatalf("ranks = %d, want 3", snap.Ranks)
	}
	want := []MatrixLink{
		{Src: 0, Dst: 1, Msgs: 2, Bytes: 128, Calls: 2, LatSeconds: 0.5},
		{Src: 0, Dst: 2, Msgs: 3, Bytes: 300},
		{Src: 1, Dst: 0, Msgs: 1, Bytes: 16},
	}
	if !reflect.DeepEqual(snap.Links, want) {
		t.Fatalf("links = %+v, want %+v", snap.Links, want)
	}
	msgs, bytes := MatrixTotals()
	if msgs != 6 || bytes != 444 {
		t.Fatalf("totals = %d msgs %d bytes, want 6/444", msgs, bytes)
	}
}

func TestMatrixAutoAssignsUnmappedTIDs(t *testing.T) {
	withMatrix(t)
	MatrixRecord(7, 9, 1, 10) // both unmapped: ranks assigned in appearance order
	MatrixRecord(9, 7, 2, 20)
	snap := MatrixSnapshot()
	if snap.Ranks != 2 {
		t.Fatalf("ranks = %d, want 2", snap.Ranks)
	}
	want := []MatrixLink{
		{Src: 0, Dst: 1, Msgs: 1, Bytes: 10},
		{Src: 1, Dst: 0, Msgs: 2, Bytes: 20},
	}
	if !reflect.DeepEqual(snap.Links, want) {
		t.Fatalf("links = %+v, want %+v", snap.Links, want)
	}
}

func TestMatrixRemapInheritsCells(t *testing.T) {
	withMatrix(t)
	MapRank(10, 0)
	MapRank(20, 1)
	MatrixRecord(10, 20, 1, 100)
	// Rank 1's server dies; TID 30 replaces it at the same rank.
	MapRank(30, 1)
	MatrixRecord(10, 30, 1, 100)
	MatrixRecord(30, 10, 1, 7)
	snap := MatrixSnapshot()
	if snap.Ranks != 2 {
		t.Fatalf("ranks = %d, want 2 (replacement must not widen the grid)", snap.Ranks)
	}
	want := []MatrixLink{
		{Src: 0, Dst: 1, Msgs: 2, Bytes: 200},
		{Src: 1, Dst: 0, Msgs: 1, Bytes: 7},
	}
	if !reflect.DeepEqual(snap.Links, want) {
		t.Fatalf("links = %+v, want %+v", snap.Links, want)
	}
}

func TestMatrixRankProfiles(t *testing.T) {
	withMatrix(t)
	MapRank(5, 0)
	RankSegment(5, 0, 1.5) // comp
	RankSegment(5, 1, 0.5) // comm
	RankSegment(5, 3, 2.0) // idle
	RankSegment(5, 4, 0.25)
	snap := MatrixSnapshot()
	if len(snap.Profiles) != 1 {
		t.Fatalf("profiles = %+v", snap.Profiles)
	}
	p := snap.Profiles[0]
	if p.Comp != 1.5 || p.Comm != 0.5 || p.Idle != 2.0 || p.Pack != 0.25 {
		t.Fatalf("profile = %+v", p)
	}
	wantBusy := 1 - 2.0/(1.5+0.5+2.0+0.25)
	if got := p.Busy(); got != wantBusy {
		t.Fatalf("busy = %v, want %v", got, wantBusy)
	}
}

func TestMatrixGrowPreservesCells(t *testing.T) {
	withMatrix(t)
	MapRank(1, 0)
	MapRank(2, 1)
	MatrixRecord(1, 2, 4, 40)
	MapRank(3, 5) // forces growth 2 → 6 with re-indexing
	snap := MatrixSnapshot()
	if snap.Ranks != 6 {
		t.Fatalf("ranks = %d, want 6", snap.Ranks)
	}
	if len(snap.Links) != 1 || snap.Links[0] != (MatrixLink{Src: 0, Dst: 1, Msgs: 4, Bytes: 40}) {
		t.Fatalf("links after growth = %+v", snap.Links)
	}
}

func TestEmitMatrixJournalsBothRecords(t *testing.T) {
	withMatrix(t)
	SetEnabled(true)
	defer SetEnabled(false)
	var buf bytes.Buffer
	StartJournal(&buf, 8)
	defer StopJournal()

	MatrixRecord(1, 2, 1, 10)
	EmitMatrix()
	out := buf.String()
	for _, want := range []string{`"type":"comm_matrix"`, `"type":"rank_profile"`, `"links":[{"src":0,"dst":1,"msgs":1,"bytes":10}]`} {
		if !strings.Contains(out, want) {
			t.Fatalf("journal missing %q:\n%s", want, out)
		}
	}

	// Disarmed, EmitMatrix is silent.
	buf.Reset()
	EnableMatrix(false)
	EmitMatrix()
	if buf.String() != "" {
		t.Fatalf("disarmed EmitMatrix journaled: %s", buf.String())
	}
}
