package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// The metrics registry: named counters, gauges and histograms with a
// Prometheus text-format exposition.  All instruments are lock-free on
// the write path and no-ops while the plane is disabled.

// numShards stripes hot counters across cache lines so concurrent fabrics
// (the TCP daemon's per-session goroutines) do not serialize on one word.
const numShards = 8

// paddedUint64 occupies a full cache line to prevent false sharing
// between adjacent shards.
type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

// shardIdx spreads concurrent writers across shards.  Goroutine stacks
// live in distinct memory regions, so hashing the address of a stack
// variable separates goroutines without any runtime support; the exact
// distribution is irrelevant, only that co-running goroutines rarely
// collide.
func shardIdx() int {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return int((p >> 10) % numShards)
}

type metric interface {
	metricName() string
	writeProm(w io.Writer)
}

// Registry holds named metrics and renders them in Prometheus text
// format.  Instruments are registered once (typically as package
// variables) and written concurrently with their updates.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// Default is the registry the standard instruments live in and the
// /metrics endpoint serves.
var Default = NewRegistry()

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.metricName()]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.metricName()))
	}
	r.byName[m.metricName()] = m
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by name, plus an opal_run info metric naming
// the current run (when one is set).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].metricName() < ms[j].metricName() })
	if run := Run(); run != "" {
		fmt.Fprintf(w, "# HELP opal_run The current run identifier.\n# TYPE opal_run gauge\nopal_run{id=\"%s\"} 1\n", promLabelEscape(run))
	}
	for _, m := range ms {
		m.writeProm(w)
	}
}

// valuer is implemented by metrics that can report their current values
// as flat name→value pairs (labels rendered prometheus-style into the
// name).  The streaming plane snapshots the registry through it.
type valuer interface {
	values(out map[string]float64)
}

// Values returns a flat snapshot of every registered metric's current
// value: counters and gauges under their name, vec children as
// `name{label="val"}`, histograms as `name_count` and `name_sum`.
func (r *Registry) Values() map[string]float64 {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]float64, 2*len(ms))
	for _, m := range ms {
		if v, ok := m.(valuer); ok {
			v.values(out)
		}
	}
	return out
}

func labeled(name, label, val string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, promLabelEscape(val))
}

// promLabelEscaper implements the text-format escaping for label values:
// exactly backslash, double-quote and newline.  Go's %q is not a
// substitute — it also escapes tabs and non-ASCII runes with sequences
// the Prometheus parser rejects.
var promLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promHelpEscaper escapes HELP text, where only backslash and newline are
// special (an unescaped newline would terminate the comment mid-text).
var promHelpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promLabelEscape escapes s for use inside a quoted label value.
func promLabelEscape(s string) string { return promLabelEscaper.Replace(s) }

// promHelpEscape escapes s for use in a # HELP line.
func promHelpEscape(s string) string { return promHelpEscaper.Replace(s) }

// writeHeader renders the # HELP / # TYPE preamble of one metric family —
// always in that order, HELP first, as the exposition format specifies.
func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, promHelpEscape(help), name, typ)
}

// Counter is a monotonically increasing counter, sharded across cache
// lines for concurrent writers.
type Counter struct {
	name, help string
	shards     [numShards]paddedUint64
}

// Counter registers a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.  A no-op while the plane is disabled.
func (c *Counter) Add(n uint64) {
	if !on.Load() {
		return
	}
	c.shards[shardIdx()].v.Add(n)
}

// Value sums the shards.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

func (c *Counter) metricName() string { return c.name }

func (c *Counter) writeProm(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

func (c *Counter) values(out map[string]float64) { out[c.name] = float64(c.Value()) }

// Gauge is a settable instantaneous value (e.g. the supervisor's state).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Gauge registers a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.  Unlike counters, gauges record state transitions that
// the /healthz endpoint must see even before the plane is armed, so Set
// is not gated.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) writeProm(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

func (g *Gauge) values(out map[string]float64) { out[g.name] = float64(g.Value()) }

// FGauge is a settable float-valued gauge — the model oracle's residuals
// and fitted machine parameters are seconds and rates, not integers.
// Like Gauge, Set is not gated on the plane switch: oracle windows close
// rarely, and /modelz must reflect the last window even while the
// high-frequency instruments are disarmed.
type FGauge struct {
	name, help string
	labelKey   string // optional single label (set by FGaugeVec)
	labelVal   string
	bits       atomic.Uint64
}

// FGauge registers a new float gauge.
func (r *Registry) FGauge(name, help string) *FGauge {
	g := &FGauge{name: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *FGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FGauge) metricName() string { return g.name }

func (g *FGauge) writeBody(w io.Writer) {
	if g.labelKey == "" {
		fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
		return
	}
	fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", g.name, g.labelKey, promLabelEscape(g.labelVal), formatFloat(g.Value()))
}

func (g *FGauge) writeProm(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	g.writeBody(w)
}

func (g *FGauge) values(out map[string]float64) {
	if g.labelKey == "" {
		out[g.name] = g.Value()
		return
	}
	out[labeled(g.name, g.labelKey, g.labelVal)] = g.Value()
}

// FGaugeVec is a family of float gauges split by one label (e.g. a model
// term or a fitted parameter name).
type FGaugeVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*FGauge
	order             []string
}

// FGaugeVec registers a new float gauge family.
func (r *Registry) FGaugeVec(name, help, label string) *FGaugeVec {
	v := &FGaugeVec{name: name, help: help, label: label, children: make(map[string]*FGauge)}
	r.register(v)
	return v
}

// With returns the child gauge for the given label value, creating it on
// first use.
func (v *FGaugeVec) With(val string) *FGauge {
	v.mu.RLock()
	g := v.children[val]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.children[val]; g != nil {
		return g
	}
	g = &FGauge{name: v.name, help: v.help, labelKey: v.label, labelVal: val}
	v.children[val] = g
	v.order = append(v.order, val)
	sort.Strings(v.order)
	return g
}

func (v *FGaugeVec) metricName() string { return v.name }

func (v *FGaugeVec) writeProm(w io.Writer) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	writeHeader(w, v.name, v.help, "gauge")
	for _, val := range v.order {
		v.children[val].writeBody(w)
	}
}

func (v *FGaugeVec) values(out map[string]float64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, val := range v.order {
		v.children[val].values(out)
	}
}

// Histogram is a fixed-bucket histogram: cumulative `le` buckets in the
// Prometheus sense, with the bucket boundaries chosen at registration.
// Observations are two atomic operations (bucket increment + sum update).
type Histogram struct {
	name, help string
	labelKey   string // optional single label, e.g. method="nbint"
	labelVal   string
	bounds     []float64
	counts     []paddedCount // len(bounds)+1; the last is +Inf
	sumBits    atomic.Uint64
}

// paddedCount is a plain atomic counter; histograms are observed from one
// client goroutine at a time, so striping is unnecessary.
type paddedCount struct{ v atomic.Uint64 }

func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s boundaries not increasing", name))
		}
	}
	return &Histogram{
		name: name, help: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]paddedCount, len(bounds)+1),
	}
}

// Histogram registers a new histogram with the given bucket boundaries.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, bounds)
	r.register(h)
	return h
}

// Observe records one value.  A no-op while the plane is disabled.
func (h *Histogram) Observe(v float64) {
	if !on.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the le bucket
	h.counts[i].v.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.counts {
		t += h.counts[i].v.Load()
	}
	return t
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) label(le string) string {
	if h.labelKey == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s=\"%s\",le=%q}", h.labelKey, promLabelEscape(h.labelVal), le)
}

func (h *Histogram) suffix() string {
	if h.labelKey == "" {
		return ""
	}
	return fmt.Sprintf("{%s=\"%s\"}", h.labelKey, promLabelEscape(h.labelVal))
}

// writeBody renders buckets/sum/count without the HELP/TYPE header so a
// HistogramVec can share one header across children.
func (h *Histogram) writeBody(w io.Writer) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].v.Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, h.label(formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].v.Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, h.label("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.suffix(), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.suffix(), cum)
}

func (h *Histogram) writeProm(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	h.writeBody(w)
}

func (h *Histogram) values(out map[string]float64) {
	out[h.name+"_count"+h.suffix()] = float64(h.Count())
	out[h.name+"_sum"+h.suffix()] = h.Sum()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CounterVec is a family of counters split by one label (e.g. RPC method
// or fault kind).  Children are created on first use and live forever —
// label cardinality is expected to be small and static.
type CounterVec struct {
	name, help, label string
	mu                sync.RWMutex
	children          map[string]*Counter
	order             []string
}

// CounterVec registers a new counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, help: help, label: label, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child counter for the given label value, creating it
// on first use.  Callers on hot paths should cache the handle.
func (v *CounterVec) With(val string) *Counter {
	v.mu.RLock()
	c := v.children[val]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[val]; c != nil {
		return c
	}
	c = &Counter{name: v.name, help: v.help}
	v.children[val] = c
	v.order = append(v.order, val)
	sort.Strings(v.order)
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) writeProm(w io.Writer) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	writeHeader(w, v.name, v.help, "counter")
	for _, val := range v.order {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.name, v.label, promLabelEscape(val), v.children[val].Value())
	}
}

func (v *CounterVec) values(out map[string]float64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, val := range v.order {
		out[labeled(v.name, v.label, val)] = float64(v.children[val].Value())
	}
}

// HistogramVec is a family of histograms split by one label.
type HistogramVec struct {
	name, help, label string
	bounds            []float64
	mu                sync.RWMutex
	children          map[string]*Histogram
	order             []string
}

// HistogramVec registers a new histogram family with shared buckets.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	v := &HistogramVec{
		name: name, help: help, label: label,
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*Histogram),
	}
	r.register(v)
	return v
}

// With returns the child histogram for the given label value, creating it
// on first use.  Callers on hot paths should cache the handle.
func (v *HistogramVec) With(val string) *Histogram {
	v.mu.RLock()
	h := v.children[val]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[val]; h != nil {
		return h
	}
	h = newHistogram(v.name, v.help, v.bounds)
	h.labelKey, h.labelVal = v.label, val
	v.children[val] = h
	v.order = append(v.order, val)
	sort.Strings(v.order)
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) writeProm(w io.Writer) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	writeHeader(w, v.name, v.help, "histogram")
	for _, val := range v.order {
		v.children[val].writeBody(w)
	}
}

func (v *HistogramVec) values(out map[string]float64) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, val := range v.order {
		v.children[val].values(out)
	}
}

// ExpBuckets returns n exponentially spaced boundaries start, start*factor,
// start*factor^2, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}
