package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// withEnabled arms the plane for one test and restores the previous state.
func withEnabled(t *testing.T) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestCounterDisabledIsNoop(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("t_disabled_total", "x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	c := r.Counter("t_concurrent_total", "x")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("sharded counter lost updates: %d != %d", got, workers*per)
	}
}

func TestGaugeSetWithoutEnable(t *testing.T) {
	// Gauges record state (supervisor rung) that /healthz must see even
	// when metrics are disarmed.
	SetEnabled(false)
	r := NewRegistry()
	g := r.Gauge("t_state", "x")
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "x", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.0005+0.001+0.005+0.05+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	h.writeProm(&sb)
	out := sb.String()
	// le="0.001" is cumulative and inclusive: 0.0005 and 0.001 land there.
	for _, want := range []string{
		`t_lat_seconds_bucket{le="0.001"} 2`,
		`t_lat_seconds_bucket{le="0.01"} 3`,
		`t_lat_seconds_bucket{le="0.1"} 4`,
		`t_lat_seconds_bucket{le="+Inf"} 5`,
		`t_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecChildrenAndExposition(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	cv := r.CounterVec("t_calls_total", "x", "method")
	cv.With("nbint").Add(3)
	cv.With("update").Inc()
	if cv.With("nbint") != cv.With("nbint") {
		t.Fatal("With should return a stable child handle")
	}
	hv := r.HistogramVec("t_call_seconds", "x", "method", []float64{0.1, 1})
	hv.With("nbint").Observe(0.05)
	hv.With("update").Observe(0.5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_calls_total{method="nbint"} 3`,
		`t_calls_total{method="update"} 1`,
		`t_call_seconds_bucket{method="nbint",le="0.1"} 1`,
		`t_call_seconds_bucket{method="update",le="1"} 1`,
		`t_call_seconds_count{method="update"} 1`,
		"# TYPE t_call_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Metrics render sorted by name: the histogram family before counters.
	if strings.Index(out, "t_call_seconds") > strings.Index(out, "t_calls_total") {
		t.Fatalf("exposition not sorted by metric name:\n%s", out)
	}
}

func TestRunInfoMetric(t *testing.T) {
	SetRun("test-run-1")
	t.Cleanup(func() { SetRun("") })
	var sb strings.Builder
	NewRegistry().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `opal_run{id="test-run-1"} 1`) {
		t.Fatalf("missing run info metric:\n%s", sb.String())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 1.6e-5}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r.Counter("t_dup_total", "x")
}
