package telemetry

import (
	"io"
	"runtime"
	"runtime/metrics"
	"strconv"
)

// Go runtime gauges on /metrics: goroutine count, heap bytes, GC cycle
// and pause totals, and the wall time of the last completed GC.  The
// values are sampled at scrape (and snapshot) time via runtime/metrics,
// so the instrument costs nothing between reads.

var runtimeSamples = []metrics.Sample{
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/cpu/classes/gc/pause:cpu-seconds"},
}

// goRuntime is a pseudo-metric that renders a block of gauges from a
// fresh runtime/metrics sample.  It registers once on Default.
type goRuntime struct{}

func init() { Default.register(goRuntime{}) }

func (goRuntime) metricName() string { return "opal_go_gc_cycles_total" }

// sampleRuntime reads the runtime counters into a name→value map.
func sampleRuntime() map[string]float64 {
	s := make([]metrics.Sample, len(runtimeSamples))
	copy(s, runtimeSamples)
	metrics.Read(s)
	out := make(map[string]float64, len(s)+1)
	get := func(i int) float64 {
		switch s[i].Value.Kind() {
		case metrics.KindUint64:
			return float64(s[i].Value.Uint64())
		case metrics.KindFloat64:
			return s[i].Value.Float64()
		}
		return 0
	}
	out["opal_go_goroutines"] = get(0)
	out["opal_go_heap_bytes"] = get(1)
	out["opal_go_gc_cycles_total"] = get(2)
	out["opal_go_gc_pause_seconds_total"] = get(3)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out["opal_go_last_gc_unix_seconds"] = float64(ms.LastGC) / 1e9
	return out
}

// runtimeOrder fixes the exposition order (WritePrometheus sorts metrics
// by name, but a single pseudo-metric renders its block itself).
var runtimeOrder = []struct{ name, help, typ string }{
	{"opal_go_gc_cycles_total", "Completed GC cycles (runtime/metrics /gc/cycles/total).", "counter"},
	{"opal_go_gc_pause_seconds_total", "Total CPU-seconds spent in GC stop-the-world pauses.", "counter"},
	{"opal_go_goroutines", "Live goroutines.", "gauge"},
	{"opal_go_heap_bytes", "Bytes of live heap objects.", "gauge"},
	{"opal_go_last_gc_unix_seconds", "Wall time of the last completed GC, unix seconds.", "gauge"},
}

func (goRuntime) writeProm(w io.Writer) {
	vals := sampleRuntime()
	for _, m := range runtimeOrder {
		writeHeader(w, m.name, m.help, m.typ)
		io.WriteString(w, m.name)
		io.WriteString(w, " ")
		io.WriteString(w, strconv.FormatFloat(vals[m.name], 'g', -1, 64))
		io.WriteString(w, "\n")
	}
}

func (goRuntime) values(out map[string]float64) {
	for k, v := range sampleRuntime() {
		out[k] = v
	}
}
