package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// The streaming plane: /streamz pushes bounded, coalesced snapshots of
// the whole observability surface — metric values, the comm matrix and
// rank profiles, health, and any registered extras (oracle residuals,
// control-plane queue depth) — as server-sent events.
//
// One hub goroutine builds a snapshot per tick and broadcasts the same
// rendered payload to every subscriber over a capacity-1 channel.  A
// slow consumer never blocks the hub or other subscribers: its stale
// snapshot is replaced by the newest one and the drop is counted — the
// stream coalesces, it does not backlog.

// StreamSnapshot is one rendered frame of the streaming plane.
type StreamSnapshot struct {
	Seq      uint64             `json:"seq"`
	Run      string             `json:"run,omitempty"`
	Health   string             `json:"health"`
	HealthOK bool               `json:"health_ok"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	Matrix   *MatrixData        `json:"matrix,omitempty"`
	Extras   map[string]any     `json:"extras,omitempty"`
	// Dropped is the global count of snapshots dropped on slow
	// subscribers since process start.
	Dropped uint64 `json:"dropped"`
}

// StreamSub is one subscription to the snapshot stream.  Read rendered
// JSON payloads from C; the channel closes when the subscription is
// canceled or the streaming plane shuts down.
type StreamSub struct {
	C       <-chan []byte
	ch      chan []byte
	dropped atomic.Uint64
	hub     *streamHub
}

// Dropped returns the number of snapshots this subscriber lost to
// coalescing (it always holds the newest instead).
func (s *StreamSub) Dropped() uint64 { return s.dropped.Load() }

// Cancel ends the subscription and closes C.  Safe to call twice.
func (s *StreamSub) Cancel() { s.hub.cancel(s) }

type streamHub struct {
	mu      sync.Mutex
	subs    map[*StreamSub]struct{}
	running bool
	stop    chan struct{}
	seq     uint64
}

var hub = &streamHub{subs: make(map[*StreamSub]struct{})}

// streamDrops is the authoritative global drop counter: it must count
// even while the metrics plane is disabled (Counter.Add is gated).
var streamDrops atomic.Uint64

var (
	// StreamSubscribers gauges the live /streamz subscriptions.
	StreamSubscribers = Default.Gauge("opal_stream_subscribers",
		"Live snapshot-stream subscriptions (/streamz consumers).")
	// StreamDropped counts snapshots dropped on slow subscribers.
	StreamDropped = Default.Counter("opal_stream_dropped_total",
		"Stream snapshots dropped on slow subscribers (each kept the newer frame).")
)

// streamInterval is the hub's tick period.
var streamInterval atomic.Int64

func init() { streamInterval.Store(int64(500 * time.Millisecond)) }

// SetStreamInterval sets the snapshot cadence (default 500ms; floors at
// 1ms).  Takes effect from the next tick.
func SetStreamInterval(d time.Duration) {
	if d < time.Millisecond {
		d = time.Millisecond
	}
	streamInterval.Store(int64(d))
}

// StreamSubscribe attaches a new subscriber to the snapshot stream,
// starting the hub on first use.  The subscriber owns a capacity-1
// channel: if it falls behind, older snapshots are dropped in its favor
// and counted on StreamDropped and StreamSub.Dropped.
func StreamSubscribe() *StreamSub {
	s := &StreamSub{ch: make(chan []byte, 1), hub: hub}
	s.C = s.ch
	hub.mu.Lock()
	defer hub.mu.Unlock()
	hub.subs[s] = struct{}{}
	StreamSubscribers.Set(int64(len(hub.subs)))
	if !hub.running {
		hub.running = true
		hub.stop = make(chan struct{})
		go hub.loop(hub.stop)
	}
	return s
}

func (h *streamHub) cancel(s *StreamSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	close(s.ch)
	StreamSubscribers.Set(int64(len(h.subs)))
	if len(h.subs) == 0 && h.running {
		close(h.stop)
		h.running = false
	}
}

// CloseStreams terminates every live subscription — the HTTP stop path
// calls it before Shutdown so in-flight SSE handlers return within the
// grace window instead of pinning their connections open.
func CloseStreams() {
	hub.mu.Lock()
	defer hub.mu.Unlock()
	for s := range hub.subs {
		delete(hub.subs, s)
		close(s.ch)
	}
	StreamSubscribers.Set(0)
	if hub.running {
		close(hub.stop)
		hub.running = false
	}
}

func (h *streamHub) loop(stop chan struct{}) {
	for {
		t := time.NewTimer(time.Duration(streamInterval.Load()))
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
		h.publish()
	}
}

// publish builds one snapshot and broadcasts it; exported for tests via
// PublishStreamSnapshot.
func (h *streamHub) publish() {
	h.mu.Lock()
	h.seq++
	seq := h.seq
	h.mu.Unlock()

	payload, err := json.Marshal(buildStreamSnapshot(seq))
	if err != nil {
		return
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		select {
		case s.ch <- payload:
			continue
		default:
		}
		// Full: evict the stale frame, then deliver the new one.  The
		// second send can only miss if the subscriber drained in between,
		// in which case it goes through.
		select {
		case <-s.ch:
			s.dropped.Add(1)
			streamDrops.Add(1)
			StreamDropped.Add(1)
		default:
		}
		select {
		case s.ch <- payload:
		default:
			s.dropped.Add(1)
			streamDrops.Add(1)
			StreamDropped.Add(1)
		}
	}
}

// PublishStreamSnapshot builds and broadcasts one snapshot immediately,
// off the tick schedule — deterministic tests and one-shot consumers use
// it instead of waiting for the hub.
func PublishStreamSnapshot() { hub.publish() }

// Stream extras: other packages register named snapshot providers (the
// oracle's residual summary, the control plane's queue pressure) without
// telemetry importing them.
var (
	extrasMu sync.Mutex
	extras   = map[string]func() any{}
	extraOrd []string
)

// RegisterStreamExtra installs fn under name in every snapshot's extras
// map.  Re-registering replaces; a nil fn removes.  fn runs on the hub
// goroutine and must be cheap and non-blocking.
func RegisterStreamExtra(name string, fn func() any) {
	extrasMu.Lock()
	defer extrasMu.Unlock()
	if fn == nil {
		delete(extras, name)
		for i, n := range extraOrd {
			if n == name {
				extraOrd = append(extraOrd[:i], extraOrd[i+1:]...)
				break
			}
		}
		return
	}
	if _, ok := extras[name]; !ok {
		extraOrd = append(extraOrd, name)
	}
	extras[name] = fn
}

func buildStreamSnapshot(seq uint64) StreamSnapshot {
	snap := StreamSnapshot{Seq: seq, Run: Run(), Metrics: Default.Values()}
	state, ok := Health()
	_, compsOK := ComponentHealth()
	snap.Health, snap.HealthOK = state, ok && compsOK
	if MatrixEnabled() {
		md := MatrixSnapshot()
		snap.Matrix = &md
	}
	extrasMu.Lock()
	names := append([]string(nil), extraOrd...)
	fns := make([]func() any, len(names))
	for i, n := range names {
		fns[i] = extras[n]
	}
	extrasMu.Unlock()
	if len(names) > 0 {
		snap.Extras = make(map[string]any, len(names))
		for i, n := range names {
			snap.Extras[n] = fns[i]()
		}
	}
	snap.Dropped = streamDrops.Load()
	return snap
}

// streamzHandler serves the SSE endpoint: one `data:` event per
// snapshot, flushed immediately, with a comment line reporting this
// subscriber's coalescing drops whenever the count advances.
func streamzHandler(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := StreamSubscribe()
	defer sub.Cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// A long-lived stream must outlive the server's write timeout; the
	// per-request deadline is lifted for this response only.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})

	var reported uint64
	for {
		select {
		case payload, ok := <-sub.C:
			if !ok {
				return // plane shut down
			}
			if d := sub.Dropped(); d != reported {
				fmt.Fprintf(w, ": coalesced %d\n", d)
				reported = d
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if _, err := w.Write(payload); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
