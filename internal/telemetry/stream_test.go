package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStreamSlowConsumerCoalesces(t *testing.T) {
	sub := StreamSubscribe()
	defer sub.Cancel()

	// Never drain: each publish past the first must evict the stale frame
	// and count a drop, keeping only the newest payload buffered.
	PublishStreamSnapshot()
	PublishStreamSnapshot()
	PublishStreamSnapshot()

	if d := sub.Dropped(); d != 2 {
		t.Fatalf("dropped = %d, want 2 (capacity-1 channel keeps the newest)", d)
	}
	var snap StreamSnapshot
	select {
	case payload := <-sub.C:
		if err := json.Unmarshal(payload, &snap); err != nil {
			t.Fatalf("payload not JSON: %v", err)
		}
	default:
		t.Fatal("no buffered frame")
	}
	// Each frame carries the drop count as of its build, one broadcast
	// behind the eviction it triggered: the third frame saw the second's.
	if snap.Dropped < 1 {
		t.Fatalf("snapshot's global drop count = %d, want >= 1", snap.Dropped)
	}
	// The buffered frame is the newest: a fresh subscriber's next frame
	// has a higher sequence number than ours.
	probe := StreamSubscribe()
	defer probe.Cancel()
	PublishStreamSnapshot()
	var next StreamSnapshot
	if err := json.Unmarshal(<-probe.C, &next); err != nil {
		t.Fatal(err)
	}
	if next.Seq <= snap.Seq {
		t.Fatalf("sequence did not advance: %d then %d", snap.Seq, next.Seq)
	}
}

func TestStreamMultiSubscriberRace(t *testing.T) {
	const subs = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < subs; i++ {
		s := StreamSubscribe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.Cancel()
			for {
				select {
				case <-s.C:
				case <-stop:
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		PublishStreamSnapshot()
	}
	close(stop)
	wg.Wait()
	if n := StreamSubscribers.Value(); n != 0 {
		t.Fatalf("subscribers gauge = %d after all canceled", n)
	}
}

func TestStreamCancelTwiceIsSafe(t *testing.T) {
	s := StreamSubscribe()
	s.Cancel()
	s.Cancel()
	if _, ok := <-s.C; ok {
		t.Fatal("canceled subscription channel not closed")
	}
}

func TestStreamExtrasAppearInSnapshots(t *testing.T) {
	RegisterStreamExtra("test_extra", func() any { return map[string]any{"k": 42} })
	defer RegisterStreamExtra("test_extra", nil)
	snap := buildStreamSnapshot(1)
	ex, ok := snap.Extras["test_extra"].(map[string]any)
	if !ok || ex["k"] != 42 {
		t.Fatalf("extras = %#v", snap.Extras)
	}
	RegisterStreamExtra("test_extra", nil)
	if snap := buildStreamSnapshot(2); snap.Extras["test_extra"] != nil {
		t.Fatalf("removed extra still present: %#v", snap.Extras)
	}
}

func TestStreamSnapshotCarriesMatrixAndMetrics(t *testing.T) {
	EnableMatrix(true)
	ResetMatrix()
	defer func() {
		EnableMatrix(false)
		ResetMatrix()
	}()
	MatrixRecord(1, 2, 3, 30)
	snap := buildStreamSnapshot(1)
	if snap.Matrix == nil || snap.Matrix.Ranks != 2 || len(snap.Matrix.Links) != 1 {
		t.Fatalf("matrix = %+v", snap.Matrix)
	}
	if _, ok := snap.Metrics["opal_pvm_messages_sent_total"]; !ok {
		t.Fatalf("metrics missing aggregate counters: %d entries", len(snap.Metrics))
	}
	if _, ok := snap.Metrics["opal_go_goroutines"]; !ok {
		t.Fatal("metrics missing Go runtime gauges")
	}
}

// readSSEFrame reads one data: event from an open SSE stream.
func readSSEFrame(t *testing.T, br *bufio.Reader) StreamSnapshot {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		if payload, ok := strings.CutPrefix(strings.TrimRight(line, "\n"), "data: "); ok {
			var snap StreamSnapshot
			if err := json.Unmarshal([]byte(payload), &snap); err != nil {
				t.Fatalf("bad frame %q: %v", payload, err)
			}
			return snap
		}
	}
}

func TestStreamzEndToEnd(t *testing.T) {
	SetStreamInterval(5 * time.Millisecond)
	defer SetStreamInterval(500 * time.Millisecond)
	bound, stop, err := Serve("localhost:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	resp, err := http.Get(fmt.Sprintf("http://%s/streamz", bound))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	first := readSSEFrame(t, br)
	second := readSSEFrame(t, br)
	if second.Seq <= first.Seq {
		t.Fatalf("sequence not advancing: %d then %d", first.Seq, second.Seq)
	}
}

func TestStreamzGracefulShutdownMidStream(t *testing.T) {
	SetStreamInterval(5 * time.Millisecond)
	defer SetStreamInterval(500 * time.Millisecond)
	bound, stop, err := Serve("localhost:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/streamz", bound))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readSSEFrame(t, br) // stream is live

	// Stopping the server must close the stream promptly (CloseStreams
	// unblocks the handler before Shutdown drains), not hang until the
	// grace deadline cuts the connection.
	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("stop() hung with a live /streamz subscriber")
	}
	// The subscriber sees EOF shortly after.
	errc := make(chan error, 1)
	go func() {
		for {
			if _, err := br.ReadString('\n'); err != nil {
				errc <- err
				return
			}
		}
	}()
	select {
	case <-errc:
	case <-time.After(3 * time.Second):
		t.Fatal("stream did not close after server stop")
	}
}
