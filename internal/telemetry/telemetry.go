// Package telemetry is the live observability plane of the reproduction:
// a zero-dependency metrics registry (sharded atomic counters, gauges and
// fixed-bucket histograms with a Prometheus text exposition), a structured
// JSONL run journal of lifecycle events with a bounded in-memory flight
// recorder, and the HTTP endpoints that serve them.
//
// The paper's central methodological claim (Section 3) is that accurate
// accounting must live *inside* the middleware — counters integrated into
// Sciddle rather than external samplers.  The trace.Recorder breakdowns
// reproduce the offline half of that claim; this package is the online
// half: the same code-integrated instrumentation, readable while a run is
// in flight, cheap enough to leave armed in production.
//
// Everything is gated on one package-level switch.  Disabled (the
// default), every instrument call is a single atomic load and a predicted
// branch — the no-op compilation the recovery plane's <2% overhead budget
// requires (BenchmarkTelemetryOverhead guards it).  Telemetry never feeds
// back into the simulation: virtual timelines and physics are bit-identical
// with the plane on or off.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// on is the package-level master switch.  All instruments no-op while it
// is false.
var on atomic.Bool

// SetEnabled arms or disarms the telemetry plane.
func SetEnabled(v bool) { on.Store(v) }

// Enabled reports whether the telemetry plane is armed.
func Enabled() bool { return on.Load() }

// runID identifies the current run in journal lines and /metrics.
var runID atomic.Pointer[string]

// SetRun installs the run identifier threaded through journal events and
// the opal_run info metric.
func SetRun(id string) { runID.Store(&id) }

// Run returns the current run identifier ("" when none is set).
func Run() string {
	if p := runID.Load(); p != nil {
		return *p
	}
	return ""
}

// NewRunID returns a fresh run identifier: the wall-clock second the run
// started plus 4 random bytes, e.g. "20260806T120301-9f3a2c1d".
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// The clock alone still identifies the run well enough.
		return time.Now().UTC().Format("20060102T150405")
	}
	return time.Now().UTC().Format("20060102T150405") + "-" + hex.EncodeToString(b[:])
}

// healthState is what /healthz reports: the supervisor's current rung and
// whether it still counts as healthy.
type healthState struct {
	state string
	ok    bool
}

var health atomic.Pointer[healthState]

// SetHealth records the current health of the run; the supervisor calls it
// on every state transition.  ok=false turns /healthz into a 503.
func SetHealth(state string, ok bool) { health.Store(&healthState{state: state, ok: ok}) }

// Health returns the current health state.  Before any supervisor reports,
// the plane is "idle" and healthy.
func Health() (state string, ok bool) {
	if h := health.Load(); h != nil {
		return h.state, h.ok
	}
	return "idle", true
}

// ResetHealth restores the initial "idle" health state (tests).
func ResetHealth() { health.Store(nil) }

// Component health: long-lived services (the control plane's queue and
// circuit breaker, for instance) register named suppliers that /healthz
// consults per request, so service-level saturation degrades health the
// same way a degraded supervisor does.

// ComponentStatus is one registered component's current report.
type ComponentStatus struct {
	Name   string
	Detail string
	OK     bool
}

var (
	compMu sync.Mutex
	comps  = map[string]func() (detail string, ok bool){}
)

// RegisterHealth installs (or, with a nil supplier, removes) a named
// component health supplier.  Suppliers must be cheap and non-blocking:
// they run on every /healthz request.
func RegisterHealth(name string, fn func() (detail string, ok bool)) {
	compMu.Lock()
	defer compMu.Unlock()
	if fn == nil {
		delete(comps, name)
		return
	}
	comps[name] = fn
}

// ComponentHealth polls every registered supplier, name-sorted, and
// reports whether all of them (possibly none) are healthy.
func ComponentHealth() (statuses []ComponentStatus, allOK bool) {
	compMu.Lock()
	names := make([]string, 0, len(comps))
	for name := range comps {
		names = append(names, name)
	}
	fns := make([]func() (string, bool), len(names))
	sort.Strings(names)
	for i, name := range names {
		fns[i] = comps[name]
	}
	compMu.Unlock()
	allOK = true
	for i, name := range names {
		detail, ok := fns[i]()
		if !ok {
			allOK = false
		}
		statuses = append(statuses, ComponentStatus{Name: name, Detail: detail, OK: ok})
	}
	return statuses, allOK
}
