package trace

import (
	"math"
	"testing"

	"opalperf/internal/vm"
)

// Table-driven aggregation edge cases: the recorder must sum exactly what
// was recorded regardless of the order, overlap or degeneracy of the
// segments — the guarantees the breakdown figures rest on.
func TestTotalsBetweenAggregation(t *testing.T) {
	type seg struct {
		proc       int
		kind       vm.SegKind
		start, end float64
	}
	inf := math.Inf(1)
	cases := []struct {
		name   string
		segs   []seg
		proc   int
		t0, t1 float64
		want   map[vm.SegKind]float64
	}{
		{
			name: "zero-duration spans contribute nothing",
			segs: []seg{
				{0, vm.SegCompute, 1, 1},
				{0, vm.SegComm, 2, 2},
				{0, vm.SegCompute, 3, 4},
			},
			proc: 0, t0: -inf, t1: inf,
			want: map[vm.SegKind]float64{vm.SegCompute: 1},
		},
		{
			name: "out-of-order recording aggregates the same",
			segs: []seg{
				{0, vm.SegComm, 5, 6},
				{0, vm.SegCompute, 0, 2},
				{0, vm.SegComm, 2, 3},
				{0, vm.SegCompute, 3, 5},
			},
			proc: 0, t0: -inf, t1: inf,
			want: map[vm.SegKind]float64{vm.SegCompute: 4, vm.SegComm: 2},
		},
		{
			name: "overlapping spans of one kind double-count by design",
			// The recorder is a pure accumulator; overlap handling (e.g.
			// a retransmission during an idle wait) is the emitter's
			// responsibility, and the sum must reflect what was emitted.
			segs: []seg{
				{0, vm.SegIdle, 0, 4},
				{0, vm.SegRecovery, 1, 2},
			},
			proc: 0, t0: -inf, t1: inf,
			want: map[vm.SegKind]float64{vm.SegIdle: 4, vm.SegRecovery: 1},
		},
		{
			name: "window clips partially overlapping segments",
			segs: []seg{
				{0, vm.SegCompute, 0, 10}, // 4 inside [3, 7]
				{0, vm.SegComm, 6, 8},     // 1 inside
				{0, vm.SegSync, 8, 9},     // outside
			},
			proc: 0, t0: 3, t1: 7,
			want: map[vm.SegKind]float64{vm.SegCompute: 4, vm.SegComm: 1},
		},
		{
			name: "window before all segments is empty",
			segs: []seg{{0, vm.SegCompute, 5, 9}},
			proc: 0, t0: 0, t1: 4,
			want: map[vm.SegKind]float64{},
		},
		{
			name: "inverted segment is ignored",
			segs: []seg{
				{0, vm.SegCompute, 4, 3},
				{0, vm.SegCompute, 0, 1},
			},
			proc: 0, t0: -inf, t1: inf,
			want: map[vm.SegKind]float64{vm.SegCompute: 1},
		},
		{
			name: "recovery aggregates apart from idle and sync",
			segs: []seg{
				{0, vm.SegIdle, 0, 1},
				{0, vm.SegRecovery, 1, 1.5},
				{0, vm.SegSync, 1.5, 2},
				{0, vm.SegRecovery, 2, 2.25},
			},
			proc: 0, t0: -inf, t1: inf,
			want: map[vm.SegKind]float64{vm.SegIdle: 1, vm.SegRecovery: 0.75, vm.SegSync: 0.5},
		},
		{
			name: "other processes never leak in",
			segs: []seg{
				{0, vm.SegCompute, 0, 1},
				{1, vm.SegCompute, 0, 100},
				{2, vm.SegRecovery, 0, 7},
			},
			proc: 0, t0: -inf, t1: inf,
			want: map[vm.SegKind]float64{vm.SegCompute: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecorder()
			for _, s := range tc.segs {
				r.Segment(s.proc, "p", s.kind, s.start, s.end)
			}
			got := r.TotalsBetween(tc.proc, tc.t0, tc.t1)
			for k := vm.SegKind(0); k < vm.NumSegKinds; k++ {
				if want := tc.want[k]; math.Abs(got[k]-want) > 1e-12 {
					t.Errorf("%v: got %v, want %v", k, got[k], want)
				}
			}
		})
	}
}

// The breakdown identity: every accounted component is non-negative and
// the six-way sum reproduces the wall clock exactly (idle is defined as
// the remainder, clamped at zero).
func TestBreakdownSumsToWall(t *testing.T) {
	cases := []struct {
		name    string
		build   func(r *Recorder)
		servers []int
		wall    float64
		// wantRecovery pins the recovery component; -1 skips the check.
		wantRecovery float64
	}{
		{
			name: "fault-free client and two servers",
			build: func(r *Recorder) {
				r.Segment(0, "client", vm.SegCompute, 0, 1)
				r.Segment(0, "client", vm.SegComm, 1, 3)
				r.Segment(0, "client", vm.SegSync, 3, 3.5)
				r.Segment(1, "s0", vm.SegCompute, 0, 6)
				r.Segment(2, "s1", vm.SegCompute, 0, 8)
			},
			servers: []int{1, 2}, wall: 12, wantRecovery: 0,
		},
		{
			name: "client recovery window counts once",
			build: func(r *Recorder) {
				r.Segment(0, "client", vm.SegCompute, 0, 2)
				r.Segment(0, "client", vm.SegRecovery, 2, 2.5)
				r.Segment(1, "s0", vm.SegCompute, 0, 4)
			},
			servers: []int{1}, wall: 8, wantRecovery: 0.5,
		},
		{
			name: "server recovery joins the client's",
			build: func(r *Recorder) {
				r.Segment(0, "client", vm.SegRecovery, 0, 1)
				r.Segment(1, "s0", vm.SegRecovery, 1, 1.25)
				r.Segment(2, "s1", vm.SegCompute, 0, 3)
			},
			servers: []int{1, 2}, wall: 5, wantRecovery: 1.25,
		},
		{
			name: "no servers at all",
			build: func(r *Recorder) {
				r.Segment(0, "client", vm.SegCompute, 0, 3)
			},
			servers: nil, wall: 4, wantRecovery: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRecorder()
			tc.build(r)
			b := ComputeBreakdown(r, 0, tc.servers, tc.wall)
			if math.Abs(b.Sum()-tc.wall) > 1e-12 {
				t.Errorf("sum %v != wall %v", b.Sum(), tc.wall)
			}
			_, vals := b.ComponentsWithRecovery()
			for i, v := range vals {
				if v < 0 {
					t.Errorf("component %d negative: %v", i, v)
				}
			}
			if tc.wantRecovery >= 0 && math.Abs(b.Recovery-tc.wantRecovery) > 1e-12 {
				t.Errorf("recovery %v, want %v", b.Recovery, tc.wantRecovery)
			}
			// The five-way view must stay byte-stable for fault-free runs:
			// recovery simply does not appear in it.
			names, five := b.Components()
			if len(names) != 5 || len(five) != 5 {
				t.Fatalf("five-way breakdown has %d components", len(five))
			}
		})
	}
}
