package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"opalperf/internal/vm"
)

// Chrome trace-event / Perfetto export: the recorded per-process
// timelines rendered as a JSON trace that chrome://tracing and
// ui.perfetto.dev load directly, making the paper's Figure 1/2
// execution-time breakdowns interactively inspectable — zoom into one
// call phase and see the request transfers, the accounting barriers, the
// server compute spans and the reply serialization laid out per process.

// chromeEvent is one entry of the trace-event JSON format.  Durations use
// the "X" (complete) phase; process/thread names use the "M" (metadata)
// phase.  Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports every recorded segment as a Chrome trace-event
// JSON object ({"traceEvents": [...]}).  Virtual seconds map to trace
// microseconds.  names labels process rows like RenderTimeline (missing
// ids fall back to the segment's recorded process name); all processes
// share one trace pid so they stack as threads of one process group.
func WriteChromeTrace(w io.Writer, r *Recorder, names map[int]string) error {
	segs := r.Segments()
	bw := &errWriter{w: w}
	io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(ev chromeEvent) {
		if !first {
			io.WriteString(bw, ",")
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			panic(fmt.Sprintf("trace: marshal chrome event: %v", err))
		}
		bw.Write(b)
	}

	// Metadata: name each process row once, in first-appearance order.
	named := map[int]bool{}
	for _, s := range segs {
		if named[s.Proc] {
			continue
		}
		named[s.Proc] = true
		label := names[s.Proc]
		if label == "" {
			label = fmt.Sprintf("%s (proc %d)", s.Name, s.Proc)
		}
		emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: s.Proc,
			Args: map[string]any{"name": label},
		})
	}
	for _, s := range segs {
		emit(chromeEvent{
			Name: s.Kind.String(),
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			Pid:  0,
			Tid:  s.Proc,
		})
	}

	// RPC flows: one call span per flow on the client row, plus a flow
	// start ("s") there and a flow finish ("f", binding to the enclosing
	// slice) on the server row, so Perfetto draws an arrow from each client
	// call to the matching server execution.  Flow ids are offset by one
	// because id 0 would be dropped by omitempty.
	for _, f := range r.Flows() {
		emit(chromeEvent{
			Name: f.Method, Cat: "rpc", Ph: "X",
			Ts: f.Issue * 1e6, Dur: (f.Reply - f.Issue) * 1e6,
			Pid: 0, Tid: f.Client,
			Args: map[string]any{"flow": f.ID, "server": f.Server},
		})
		emit(chromeEvent{
			Name: f.Method, Cat: "flow", Ph: "s", ID: f.ID + 1,
			Ts: f.Issue * 1e6, Pid: 0, Tid: f.Client,
		})
		emit(chromeEvent{
			Name: f.Method, Cat: "flow", Ph: "f", Bp: "e", ID: f.ID + 1,
			Ts: f.Reply * 1e6, Pid: 0, Tid: f.Server,
		})
	}
	// Per-link counter tracks ("C" events): cumulative completed calls on
	// each client→server link, sampled at every reply — the trace-side
	// view of the comm matrix, rendered by Perfetto as a step chart per
	// link.
	type linkKey struct{ client, server int }
	flows := append([]Flow(nil), r.Flows()...)
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Reply < flows[j].Reply })
	counts := map[linkKey]int{}
	for _, f := range flows {
		k := linkKey{f.Client, f.Server}
		counts[k]++
		emit(chromeEvent{
			Name: fmt.Sprintf("link %d→%d", f.Client, f.Server),
			Cat:  "comm_matrix", Ph: "C",
			Ts: f.Reply * 1e6, Pid: 0,
			Args: map[string]any{"calls": counts[k]},
		})
	}
	io.WriteString(bw, "]}\n")
	return bw.err
}

// errWriter latches the first write error so the export loop stays
// uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

// ChromeTraceKinds lists the category names the export uses, one per
// segment kind — handy for Perfetto queries.
func ChromeTraceKinds() []string {
	out := make([]string, vm.NumSegKinds)
	for k := 0; k < vm.NumSegKinds; k++ {
		out[k] = vm.SegKind(k).String()
	}
	return out
}
