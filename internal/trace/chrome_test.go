package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"opalperf/internal/vm"
)

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "opal-client", vm.SegCompute, 0, 0.5)
	r.Segment(0, "opal-client", vm.SegComm, 0.5, 0.75)
	r.Segment(1, "opal-server-0", vm.SegCompute, 0.1, 0.9)
	r.Segment(1, "opal-server-0", vm.SegSync, 0.9, 1.0)

	var buf bytes.Buffer
	names := map[int]string{0: "client"}
	if err := WriteChromeTrace(&buf, r, names); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 2 thread_name metadata events + 4 complete events.
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Fatalf("metadata event named %q", ev.Name)
			}
		case "X":
			complete++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 4 {
		t.Fatalf("got %d metadata + %d complete events, want 2 + 4", meta, complete)
	}
	// The explicit name wins; the fallback derives from the recorded name.
	foundClient, foundServer := false, false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		switch ev.Args["name"] {
		case "client":
			foundClient = true
		case "opal-server-0 (proc 1)":
			foundServer = true
		}
	}
	if !foundClient || !foundServer {
		t.Fatalf("thread names missing (client=%v server=%v):\n%s", foundClient, foundServer, buf.String())
	}
	// Virtual seconds map to microseconds; kinds become names/categories.
	ev := doc.TraceEvents[meta] // first complete event
	if ev.Name != "compute" || ev.Cat != "compute" || ev.Ts != 0 || ev.Dur != 0.5e6 {
		t.Fatalf("first complete event = %+v", ev)
	}
	// The server's sync span lands at ts=0.9s=9e5us on tid 1.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Name != "sync" || last.Tid != 1 || last.Ts != 0.9e6 {
		t.Fatalf("last complete event = %+v", last)
	}
}

// Flows export as a client-row call span plus a flow-start/flow-finish
// pair, so Perfetto draws an arrow from each call to the server execution
// it waited on.
func TestWriteChromeTraceFlows(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "client", vm.SegIdle, 0, 1)
	r.Segment(1, "server", vm.SegCompute, 0.2, 0.8)
	r.Flow("nbint", 0, 1, 0.1, 0.9)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			ID   int            `json:"id"`
			Bp   string         `json:"bp"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export invalid: %v\n%s", err, buf.String())
	}
	var call, start, finish bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Cat == "rpc":
			call = true
			if ev.Name != "nbint" || ev.Tid != 0 || ev.Ts != 0.1e6 || ev.Dur != 0.8e6 {
				t.Fatalf("call span = %+v", ev)
			}
			if ev.Args["flow"] != 0.0 || ev.Args["server"] != 1.0 {
				t.Fatalf("call span args = %v", ev.Args)
			}
		case ev.Ph == "s":
			start = true
			// Flow ids are offset by one so id 0 survives omitempty.
			if ev.Cat != "flow" || ev.ID != 1 || ev.Tid != 0 || ev.Ts != 0.1e6 {
				t.Fatalf("flow start = %+v", ev)
			}
		case ev.Ph == "f":
			finish = true
			// bp="e" binds the finish to the enclosing server slice.
			if ev.Cat != "flow" || ev.ID != 1 || ev.Tid != 1 || ev.Ts != 0.9e6 || ev.Bp != "e" {
				t.Fatalf("flow finish = %+v", ev)
			}
		}
	}
	if !call || !start || !finish {
		t.Fatalf("flow events missing (call=%v start=%v finish=%v):\n%s",
			call, start, finish, buf.String())
	}
}

func TestWriteChromeTraceEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, NewRecorder(), nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v\n%s", err, buf.String())
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty recorder should export an empty traceEvents array: %s", buf.String())
	}
}

func TestChromeTraceKinds(t *testing.T) {
	kinds := ChromeTraceKinds()
	if len(kinds) != vm.NumSegKinds || kinds[0] != "compute" || kinds[vm.SegRecovery] != "recovery" {
		t.Fatalf("kinds = %v", kinds)
	}
}
