package trace

import (
	"fmt"
	"sort"

	"opalperf/internal/vm"
)

// The critical-path reducer: walks the client's timeline through a window
// and attributes every second of it to one of the paper's model terms.
// The client's own segments classify directly (compute → sequential,
// transfers → communication, barriers → synchronization); the interesting
// case is client *idle* time, which the plain breakdown lumps into one
// bucket.  Here the recorded RPC flows identify which servers the client
// was actually waiting on during each idle span, and the portion of the
// wait during which at least one awaited server was computing is credited
// to the parallel-computation term — the paper's t_par_comp seen from the
// critical path — while the remainder stays idle (in-flight transfers,
// stragglers that finished, scheduling gaps).

// CritPath is the wall-clock blame of one client window, in seconds per
// model term.  Par+Seq+Comm+Sync+Recovery+Idle equals the client's total
// recorded time in the window.
type CritPath struct {
	Par      float64 // client waits covered by awaited-server computation
	Seq      float64 // client's own computation
	Comm     float64 // client transfer time
	Sync     float64 // client barrier time
	Recovery float64 // client fault-recovery time
	Idle     float64 // waits not covered by any awaited server's computation
	Flows    int     // RPC flows overlapping the window
}

// Total returns the attributed client time.
func (c CritPath) Total() float64 {
	return c.Par + c.Seq + c.Comm + c.Sync + c.Recovery + c.Idle
}

func (c CritPath) String() string {
	return fmt.Sprintf("critpath: par %.3f + seq %.3f + comm %.3f + sync %.3f + recovery %.3f + idle %.3f (%d flows)",
		c.Par, c.Seq, c.Comm, c.Sync, c.Recovery, c.Idle, c.Flows)
}

// ComputeCriticalPath attributes the client's timeline in [t0, t1] to the
// model terms using the recorded flows to resolve idle time.
func ComputeCriticalPath(r *Recorder, clientID int, t0, t1 float64) CritPath {
	segs := r.Segments()
	flows := r.Flows()
	var cp CritPath

	// Server compute intervals, clipped to the window, indexed by proc.
	compute := map[int][]ival{}
	for _, s := range segs {
		if s.Proc == clientID || s.Kind != vm.SegCompute {
			continue
		}
		if iv, ok := clip(s.Start, s.End, t0, t1); ok {
			compute[s.Proc] = append(compute[s.Proc], iv)
		}
	}
	for _, f := range flows {
		if f.Client == clientID && f.Issue < t1 && f.Reply > t0 {
			cp.Flows++
		}
	}

	scratch := make([]ival, 0, 16)
	for _, s := range segs {
		if s.Proc != clientID {
			continue
		}
		iv, ok := clip(s.Start, s.End, t0, t1)
		if !ok {
			continue
		}
		d := iv.b - iv.a
		switch s.Kind {
		case vm.SegCompute, vm.SegOther:
			cp.Seq += d
		case vm.SegComm:
			cp.Comm += d
		case vm.SegSync:
			cp.Sync += d
		case vm.SegRecovery:
			cp.Recovery += d
		case vm.SegIdle:
			// Which servers was the client waiting on here?  Flows open
			// anywhere in the span name the awaited servers; time where at
			// least one of them computes is parallel work on the critical
			// path.
			scratch = scratch[:0]
			for _, f := range flows {
				if f.Client != clientID || f.Issue >= iv.b || f.Reply <= iv.a {
					continue
				}
				fa, fb := f.Issue, f.Reply
				for _, c := range compute[f.Server] {
					if ov, ok := clip(c.a, c.b, maxf(fa, iv.a), minf(fb, iv.b)); ok {
						scratch = append(scratch, ov)
					}
				}
			}
			covered := unionLen(scratch)
			cp.Par += covered
			cp.Idle += d - covered
		default:
			cp.Idle += d
		}
	}
	return cp
}

type ival struct{ a, b float64 }

// clip intersects [a, b] with [t0, t1]; ok is false for an empty result.
func clip(a, b, t0, t1 float64) (ival, bool) {
	if a < t0 {
		a = t0
	}
	if b > t1 {
		b = t1
	}
	if b <= a {
		return ival{}, false
	}
	return ival{a, b}, true
}

// unionLen measures the union of the intervals (sorts in place).
func unionLen(ivs []ival) float64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	total, curA, curB := 0.0, ivs[0].a, ivs[0].b
	for _, iv := range ivs[1:] {
		if iv.a > curB {
			total += curB - curA
			curA, curB = iv.a, iv.b
			continue
		}
		if iv.b > curB {
			curB = iv.b
		}
	}
	return total + (curB - curA)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
