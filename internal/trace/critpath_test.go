package trace

import (
	"math"
	"testing"

	"opalperf/internal/vm"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestRecorderFlows(t *testing.T) {
	r := NewRecorder()
	if f := r.Flows(); f == nil || len(f) != 0 {
		t.Fatalf("empty recorder Flows() = %#v, want empty non-nil", f)
	}
	r.Flow("nbint", 0, 1, 0.5, 1.5)
	r.Flow("update", 0, 2, 0.6, 1.8)
	f := r.Flows()
	if len(f) != 2 {
		t.Fatalf("recorded %d flows, want 2", len(f))
	}
	if f[0].ID != 0 || f[1].ID != 1 {
		t.Fatalf("flow ids not in recording order: %+v", f)
	}
	want := Flow{ID: 1, Method: "update", Client: 0, Server: 2, Issue: 0.6, Reply: 1.8}
	if f[1] != want {
		t.Fatalf("flow = %+v, want %+v", f[1], want)
	}
	r.Reset()
	if len(r.Flows()) != 0 {
		t.Fatal("Reset did not clear flows")
	}
	r.Flow("nbint", 0, 1, 0, 1)
	if got := r.Flows()[0].ID; got != 0 {
		t.Fatalf("ids do not restart after Reset: %d", got)
	}
}

// The defining case of the reducer: a client idle span is split into the
// part covered by awaited-server computation (parallel work on the
// critical path) and the genuinely idle remainder.
//
//	client: |compute 0-1|comm 1-1.2|   idle 1.2-2.2    |sync 2.2-2.4|
//	srv 1 :                |compute 1.2-1.8|
//	srv 2 :                     |compute 1.5-2.0|
//	flows : 0→1 [1.0,2.0], 0→2 [1.1,2.2]
//
// The union of awaited compute inside the idle span is [1.2,2.0] = 0.8s.
func TestComputeCriticalPathResolvesIdle(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "client", vm.SegCompute, 0, 1)
	r.Segment(0, "client", vm.SegComm, 1, 1.2)
	r.Segment(0, "client", vm.SegIdle, 1.2, 2.2)
	r.Segment(0, "client", vm.SegSync, 2.2, 2.4)
	r.Segment(1, "srv", vm.SegCompute, 1.2, 1.8)
	r.Segment(2, "srv", vm.SegCompute, 1.5, 2.0)
	r.Flow("nbint", 0, 1, 1.0, 2.0)
	r.Flow("nbint", 0, 2, 1.1, 2.2)

	cp := ComputeCriticalPath(r, 0, 0, 2.4)
	if !approx(cp.Seq, 1.0) || !approx(cp.Comm, 0.2) || !approx(cp.Sync, 0.2) {
		t.Fatalf("direct terms wrong: %s", cp)
	}
	if !approx(cp.Par, 0.8) || !approx(cp.Idle, 0.2) {
		t.Fatalf("idle not resolved via flows: %s", cp)
	}
	if cp.Flows != 2 {
		t.Fatalf("flows overlapping window = %d, want 2", cp.Flows)
	}
	// Attribution is exhaustive: the terms sum to the client's recorded time.
	if !approx(cp.Total(), 2.4) {
		t.Fatalf("total = %g, want 2.4", cp.Total())
	}
}

// Without flows there is no evidence of who the client waited on, so idle
// time stays idle even while servers happen to compute.
func TestComputeCriticalPathNoFlowsAllIdle(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "client", vm.SegIdle, 0, 1)
	r.Segment(1, "srv", vm.SegCompute, 0.2, 0.8)
	cp := ComputeCriticalPath(r, 0, 0, 1)
	if !approx(cp.Idle, 1) || cp.Par != 0 || cp.Flows != 0 {
		t.Fatalf("unattributed wait must stay idle: %s", cp)
	}
}

// Segments, flows and server compute are all clipped to the window, so a
// sliding-window caller (the oracle) sees only the window's share.
func TestComputeCriticalPathWindowClip(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "client", vm.SegCompute, 0, 1)
	r.Segment(0, "client", vm.SegIdle, 1, 3)
	r.Segment(1, "srv", vm.SegCompute, 1, 3)
	r.Flow("nbint", 0, 1, 1, 3)

	cp := ComputeCriticalPath(r, 0, 0.5, 2)
	if !approx(cp.Seq, 0.5) {
		t.Fatalf("clipped seq = %g, want 0.5", cp.Seq)
	}
	if !approx(cp.Par, 1.0) || !approx(cp.Idle, 0) {
		t.Fatalf("clipped idle resolution wrong: %s", cp)
	}
	if !approx(cp.Total(), 1.5) {
		t.Fatalf("clipped total = %g, want 1.5", cp.Total())
	}
	// A window that misses the flow entirely counts zero flows.
	if got := ComputeCriticalPath(r, 0, 0, 0.9).Flows; got != 0 {
		t.Fatalf("flow counted outside its lifetime: %d", got)
	}
}

// Overlapping waits on the same server must not be double-credited: two
// concurrent flows to one server cover the same compute interval once.
func TestComputeCriticalPathUnionNotSum(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "client", vm.SegIdle, 0, 1)
	r.Segment(1, "srv", vm.SegCompute, 0, 1)
	r.Flow("nbint", 0, 1, 0, 1)
	r.Flow("update", 0, 1, 0, 1)
	cp := ComputeCriticalPath(r, 0, 0, 1)
	if !approx(cp.Par, 1) || !approx(cp.Idle, 0) {
		t.Fatalf("overlapping flows double-credited: %s", cp)
	}
}

func TestUnionLen(t *testing.T) {
	cases := []struct {
		ivs  []ival
		want float64
	}{
		{nil, 0},
		{[]ival{{0, 1}}, 1},
		{[]ival{{0, 1}, {2, 3}}, 2},
		{[]ival{{0, 2}, {1, 3}}, 3},
		{[]ival{{1, 3}, {0, 2}, {0.5, 1}}, 3},
		{[]ival{{0, 5}, {1, 2}}, 5},
	}
	for _, c := range cases {
		if got := unionLen(append([]ival(nil), c.ivs...)); !approx(got, c.want) {
			t.Errorf("unionLen(%v) = %g, want %g", c.ivs, got, c.want)
		}
	}
}
