package trace

import (
	"opalperf/internal/vm"
)

// Sampler reproduces the behaviour of the sampling-based performance
// tools the paper warns about (Section 3.2): "Sampling based tools give a
// direct estimate for the compute rate in MFlop/s and are easy to use,
// but they are extremely complex to understand.  Sampled computation
// rates are no substitute for the simple ratio of operations counted
// divided by the cycles used."
//
// SampleShares probes a process's recorded timeline at a fixed period and
// attributes each whole period to whatever the process was doing at the
// sample instant.  Short phases alias: a process that alternates 1 ms of
// communication with 9 ms of computation looks 100% busy to a 10 ms
// sampler that happens to land on the compute phase — or 100% idle if it
// lands in the gaps.  Comparing the sampled shares against the exact
// TotalsBetween quantifies the bias.
func SampleShares(r *Recorder, proc int, t0, t1, period float64) [vm.NumSegKinds]float64 {
	var counts [vm.NumSegKinds]float64
	if period <= 0 || t1 <= t0 {
		return counts
	}
	segs := r.Segments()
	total := 0.0
	for t := t0 + period/2; t < t1; t += period {
		kind, ok := stateAt(segs, proc, t)
		if ok {
			counts[kind]++
		}
		total++
	}
	if total == 0 {
		return counts
	}
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

// stateAt finds the segment covering time t for the process.
func stateAt(segs []Segment, proc int, t float64) (vm.SegKind, bool) {
	for _, s := range segs {
		if s.Proc == proc && s.Start <= t && t < s.End {
			return s.Kind, true
		}
	}
	return 0, false
}

// SamplingBias compares the sampled compute share against the exact one
// and returns the absolute error — the quantity that made the paper
// insist on counted operations over sampling.
func SamplingBias(r *Recorder, proc int, t0, t1, period float64) float64 {
	exact := r.TotalsBetween(proc, t0, t1)
	wall := t1 - t0
	if wall <= 0 {
		return 0
	}
	exactShare := exact[vm.SegCompute] / wall
	sampled := SampleShares(r, proc, t0, t1, period)
	d := sampled[vm.SegCompute] - exactShare
	if d < 0 {
		d = -d
	}
	return d
}
