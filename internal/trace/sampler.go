package trace

import (
	"sort"

	"opalperf/internal/vm"
)

// Sampler reproduces the behaviour of the sampling-based performance
// tools the paper warns about (Section 3.2): "Sampling based tools give a
// direct estimate for the compute rate in MFlop/s and are easy to use,
// but they are extremely complex to understand.  Sampled computation
// rates are no substitute for the simple ratio of operations counted
// divided by the cycles used."
//
// SampleShares probes a process's recorded timeline at a fixed period and
// attributes each whole period to whatever the process was doing at the
// sample instant.  Short phases alias: a process that alternates 1 ms of
// communication with 9 ms of computation looks 100% busy to a 10 ms
// sampler that happens to land on the compute phase — or 100% idle if it
// lands in the gaps.  Comparing the sampled shares against the exact
// TotalsBetween quantifies the bias.
func SampleShares(r *Recorder, proc int, t0, t1, period float64) [vm.NumSegKinds]float64 {
	var counts [vm.NumSegKinds]float64
	if period <= 0 || t1 <= t0 {
		return counts
	}
	idx := buildProcIndex(r.Segments(), proc)
	total := 0.0
	for t := t0 + period/2; t < t1; t += period {
		kind, ok := idx.stateAt(t)
		if ok {
			counts[kind]++
		}
		total++
	}
	if total == 0 {
		return counts
	}
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

// procIndex is one process's segments sorted by start time, with a prefix
// maximum over end times so point queries can bound their backward scan.
// Building it once turns the former O(segments × samples) probe loop into
// O(segments·log segments + samples·log segments).
type procIndex struct {
	segs   []Segment // this process only, sorted by Start (stable)
	maxEnd []float64 // maxEnd[i] = max(segs[0..i].End)
}

func buildProcIndex(all []Segment, proc int) procIndex {
	var idx procIndex
	for _, s := range all {
		if s.Proc == proc {
			idx.segs = append(idx.segs, s)
		}
	}
	sort.SliceStable(idx.segs, func(i, j int) bool { return idx.segs[i].Start < idx.segs[j].Start })
	idx.maxEnd = make([]float64, len(idx.segs))
	for i, s := range idx.segs {
		idx.maxEnd[i] = s.End
		if i > 0 && idx.maxEnd[i-1] > s.End {
			idx.maxEnd[i] = idx.maxEnd[i-1]
		}
	}
	return idx
}

// stateAt finds a segment covering time t.  It binary-searches for the
// last segment starting at or before t and walks backwards only while the
// prefix maximum of end times proves a covering segment may still exist —
// on the kernel's sequential (non-overlapping) per-process timelines that
// walk inspects exactly one segment.  Where segments do overlap (e.g. a
// ReportRecovery window layered over the spans recorded inside it), the
// latest-starting covering segment wins.
func (x procIndex) stateAt(t float64) (vm.SegKind, bool) {
	// First segment with Start > t; candidates are everything before it.
	i := sort.Search(len(x.segs), func(i int) bool { return x.segs[i].Start > t }) - 1
	for ; i >= 0 && x.maxEnd[i] > t; i-- {
		if s := x.segs[i]; s.Start <= t && t < s.End {
			return s.Kind, true
		}
	}
	return 0, false
}

// SamplingBias compares the sampled compute share against the exact one
// and returns the absolute error — the quantity that made the paper
// insist on counted operations over sampling.
func SamplingBias(r *Recorder, proc int, t0, t1, period float64) float64 {
	exact := r.TotalsBetween(proc, t0, t1)
	wall := t1 - t0
	if wall <= 0 {
		return 0
	}
	exactShare := exact[vm.SegCompute] / wall
	sampled := SampleShares(r, proc, t0, t1, period)
	d := sampled[vm.SegCompute] - exactShare
	if d < 0 {
		d = -d
	}
	return d
}
