package trace

import (
	"math"
	"testing"

	"opalperf/internal/vm"
)

// alternating builds a timeline alternating compute (dc) and comm (dm)
// phases over [0, total).
func alternating(dc, dm, total float64) *Recorder {
	r := NewRecorder()
	t := 0.0
	for t < total {
		r.Segment(0, "p", vm.SegCompute, t, t+dc)
		r.Segment(0, "p", vm.SegComm, t+dc, t+dc+dm)
		t += dc + dm
	}
	return r
}

func TestSampleSharesFineSamplingConverges(t *testing.T) {
	r := alternating(0.009, 0.001, 1.0) // 90% compute
	shares := SampleShares(r, 0, 0, 1, 1e-4)
	if math.Abs(shares[vm.SegCompute]-0.9) > 0.02 {
		t.Errorf("fine-sampled compute share = %v, want ~0.9", shares[vm.SegCompute])
	}
	if math.Abs(shares[vm.SegComm]-0.1) > 0.02 {
		t.Errorf("fine-sampled comm share = %v, want ~0.1", shares[vm.SegComm])
	}
}

// TestCoarseSamplingAliases is the paper's Section 3.2 point: a sampler
// whose period resonates with the phase structure reports a wildly wrong
// rate, while the counted ratio is exact.
func TestCoarseSamplingAliases(t *testing.T) {
	// Phases repeat every 10 ms; sampling every 10 ms starting at 5 ms
	// always lands in the 9 ms compute phase: it reports 100% compute
	// although the true share is 90%.
	r := alternating(0.009, 0.001, 1.0)
	shares := SampleShares(r, 0, 0, 1, 0.01)
	if shares[vm.SegCompute] != 1.0 {
		t.Errorf("aliased compute share = %v, want exactly 1.0", shares[vm.SegCompute])
	}
	bias := SamplingBias(r, 0, 0, 1, 0.01)
	if math.Abs(bias-0.1) > 1e-9 {
		t.Errorf("sampling bias = %v, want 0.1", bias)
	}
	// The counted (exact) accounting has no such bias.
	exact := r.TotalsBetween(0, 0, 1)
	if math.Abs(exact[vm.SegCompute]-0.9) > 1e-9 {
		t.Errorf("counted compute = %v", exact[vm.SegCompute])
	}
}

func TestSampleSharesUntrackedGaps(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "p", vm.SegCompute, 0, 0.25) // then silence
	shares := SampleShares(r, 0, 0, 1, 0.01)
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-0.25) > 0.05 {
		t.Errorf("tracked share = %v, want ~0.25 (gaps unattributed)", sum)
	}
}

func TestSampleSharesDegenerate(t *testing.T) {
	r := NewRecorder()
	if s := SampleShares(r, 0, 0, 1, 0); s != ([vm.NumSegKinds]float64{}) {
		t.Error("zero period should give zeros")
	}
	if s := SampleShares(r, 0, 1, 1, 0.1); s != ([vm.NumSegKinds]float64{}) {
		t.Error("empty window should give zeros")
	}
	if SamplingBias(r, 0, 1, 1, 0.1) != 0 {
		t.Error("empty window bias should be 0")
	}
}
