package trace

import (
	"math"
	"testing"

	"opalperf/internal/vm"
)

// alternating builds a timeline alternating compute (dc) and comm (dm)
// phases over [0, total).
func alternating(dc, dm, total float64) *Recorder {
	r := NewRecorder()
	t := 0.0
	for t < total {
		r.Segment(0, "p", vm.SegCompute, t, t+dc)
		r.Segment(0, "p", vm.SegComm, t+dc, t+dc+dm)
		t += dc + dm
	}
	return r
}

func TestSampleSharesFineSamplingConverges(t *testing.T) {
	r := alternating(0.009, 0.001, 1.0) // 90% compute
	shares := SampleShares(r, 0, 0, 1, 1e-4)
	if math.Abs(shares[vm.SegCompute]-0.9) > 0.02 {
		t.Errorf("fine-sampled compute share = %v, want ~0.9", shares[vm.SegCompute])
	}
	if math.Abs(shares[vm.SegComm]-0.1) > 0.02 {
		t.Errorf("fine-sampled comm share = %v, want ~0.1", shares[vm.SegComm])
	}
}

// TestCoarseSamplingAliases is the paper's Section 3.2 point: a sampler
// whose period resonates with the phase structure reports a wildly wrong
// rate, while the counted ratio is exact.
func TestCoarseSamplingAliases(t *testing.T) {
	// Phases repeat every 10 ms; sampling every 10 ms starting at 5 ms
	// always lands in the 9 ms compute phase: it reports 100% compute
	// although the true share is 90%.
	r := alternating(0.009, 0.001, 1.0)
	shares := SampleShares(r, 0, 0, 1, 0.01)
	if shares[vm.SegCompute] != 1.0 {
		t.Errorf("aliased compute share = %v, want exactly 1.0", shares[vm.SegCompute])
	}
	bias := SamplingBias(r, 0, 0, 1, 0.01)
	if math.Abs(bias-0.1) > 1e-9 {
		t.Errorf("sampling bias = %v, want 0.1", bias)
	}
	// The counted (exact) accounting has no such bias.
	exact := r.TotalsBetween(0, 0, 1)
	if math.Abs(exact[vm.SegCompute]-0.9) > 1e-9 {
		t.Errorf("counted compute = %v", exact[vm.SegCompute])
	}
}

func TestSampleSharesUntrackedGaps(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "p", vm.SegCompute, 0, 0.25) // then silence
	shares := SampleShares(r, 0, 0, 1, 0.01)
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-0.25) > 0.05 {
		t.Errorf("tracked share = %v, want ~0.25 (gaps unattributed)", sum)
	}
}

func TestSampleSharesDegenerate(t *testing.T) {
	r := NewRecorder()
	if s := SampleShares(r, 0, 0, 1, 0); s != ([vm.NumSegKinds]float64{}) {
		t.Error("zero period should give zeros")
	}
	if s := SampleShares(r, 0, 1, 1, 0.1); s != ([vm.NumSegKinds]float64{}) {
		t.Error("empty window should give zeros")
	}
	if SamplingBias(r, 0, 1, 1, 0.1) != 0 {
		t.Error("empty window bias should be 0")
	}
}

// naiveStateAt is the pre-index reference implementation: first segment
// in recording order covering t wins.
func naiveStateAt(segs []Segment, proc int, t float64) (vm.SegKind, bool) {
	for _, s := range segs {
		if s.Proc == proc && s.Start <= t && t < s.End {
			return s.Kind, true
		}
	}
	return 0, false
}

// TestSampleSharesLargeTimelineMatchesNaive drives the indexed lookup
// over a large multi-process timeline with untracked gaps and checks
// every probe against the naive linear scan.  With 16k segments and 8k
// samples the old O(segments x samples) loop was the hot spot of
// post-run analysis; the index answers the same probes from a binary
// search.
func TestSampleSharesLargeTimelineMatchesNaive(t *testing.T) {
	r := NewRecorder()
	const procs = 4
	const perProc = 4000
	// Deterministic irregular phases: lengths from a tiny LCG, occasional
	// gaps so some samples land on untracked time.
	lcg := uint64(12345)
	next := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return float64(lcg>>40) / float64(1<<24)
	}
	for p := 0; p < procs; p++ {
		now := 0.0
		for i := 0; i < perProc; i++ {
			d := 1e-4 + 1e-3*next()
			kind := vm.SegKind(i % vm.NumSegKinds)
			if i%17 == 0 {
				now += 5e-4 * next() // untracked gap
			}
			r.Segment(p, "p", kind, now, now+d)
			now += d
		}
	}
	segs := r.Segments()
	const t0, t1, period = 0.0, 2.0, 2.5e-4
	for p := 0; p < procs; p++ {
		idx := buildProcIndex(segs, p)
		for probe := t0 + period/2; probe < t1; probe += period {
			gotKind, gotOK := idx.stateAt(probe)
			wantKind, wantOK := naiveStateAt(segs, p, probe)
			if gotOK != wantOK || (gotOK && gotKind != wantKind) {
				t.Fatalf("proc %d t=%g: indexed (%v,%v) != naive (%v,%v)",
					p, probe, gotKind, gotOK, wantKind, wantOK)
			}
		}
	}
	// And the aggregate shares agree with the exact accounting direction:
	// fine sampling converges on TotalsBetween.
	shares := SampleShares(r, 0, 0, 1, 1e-5)
	exact := r.TotalsBetween(0, 0, 1)
	for k := 0; k < vm.NumSegKinds; k++ {
		if math.Abs(shares[k]-exact[k]) > 0.01 {
			t.Fatalf("kind %d: fine-sampled share %v far from exact %v", k, shares[k], exact[k])
		}
	}
}

// TestStateAtOverlappingSegments pins the documented overlap rule: the
// latest-starting covering segment wins (a ReportRecovery window layered
// over the spans recorded inside it reports the inner span).
func TestStateAtOverlappingSegments(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "p", vm.SegRecovery, 0, 1.0) // outer recovery window
	r.Segment(0, "p", vm.SegComm, 0.4, 0.6)   // inner span recorded later
	idx := buildProcIndex(r.Segments(), 0)
	if k, ok := idx.stateAt(0.5); !ok || k != vm.SegComm {
		t.Fatalf("overlap at 0.5 = (%v,%v), want inner comm span", k, ok)
	}
	if k, ok := idx.stateAt(0.2); !ok || k != vm.SegRecovery {
		t.Fatalf("outside inner span at 0.2 = (%v,%v), want recovery", k, ok)
	}
	if _, ok := idx.stateAt(1.5); ok {
		t.Fatal("probe past every segment should be uncovered")
	}
}
