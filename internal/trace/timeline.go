package trace

import (
	"fmt"
	"sort"
	"strings"

	"opalperf/internal/vm"
)

// Timeline rendering: a Gantt-style text chart of every process's
// classified activity over a time window — the visual counterpart of the
// breakdown aggregation, useful for seeing the phase structure (call,
// compute, barrier, return) and the even-server imbalance directly.

// timelineGlyphs maps segment kinds to chart characters.
var timelineGlyphs = [vm.NumSegKinds]byte{
	vm.SegCompute: '#',
	vm.SegComm:    '=',
	vm.SegSync:    '+',
	vm.SegIdle:    '.',
	vm.SegOther:   'o',
}

// RenderTimeline draws one row per process over [t0, t1], width columns
// wide.  Each column shows the kind that occupied most of its time
// bucket; untracked time is blank.  names maps process ids to labels
// (missing ids get "proc N").
func RenderTimeline(r *Recorder, names map[int]string, t0, t1 float64, width int) string {
	if width <= 0 {
		width = 80
	}
	if t1 <= t0 {
		return ""
	}
	procs := r.Procs()
	if len(procs) == 0 {
		return ""
	}
	dt := (t1 - t0) / float64(width)

	labelW := 0
	label := func(id int) string {
		if n, ok := names[id]; ok {
			return n
		}
		return fmt.Sprintf("proc %d", id)
	}
	for _, id := range procs {
		if l := len(label(id)); l > labelW {
			labelW = l
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s  |%s|\n", labelW, "", timeAxis(t0, t1, width))
	segs := r.Segments()
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
	for _, id := range procs {
		// Accumulate per-bucket occupancy by kind.
		occ := make([][vm.NumSegKinds]float64, width)
		for _, s := range segs {
			if s.Proc != id || s.End <= t0 || s.Start >= t1 {
				continue
			}
			lo, hi := s.Start, s.End
			if lo < t0 {
				lo = t0
			}
			if hi > t1 {
				hi = t1
			}
			b0 := int((lo - t0) / dt)
			b1 := int((hi - t0) / dt)
			if b1 >= width {
				b1 = width - 1
			}
			for b := b0; b <= b1; b++ {
				blo := t0 + float64(b)*dt
				bhi := blo + dt
				if lo > blo {
					blo = lo
				}
				if hi < bhi {
					bhi = hi
				}
				if bhi > blo {
					occ[b][s.Kind] += bhi - blo
				}
			}
		}
		row := make([]byte, width)
		for b := range row {
			best, bestV := -1, 0.0
			for k := 0; k < vm.NumSegKinds; k++ {
				if occ[b][k] > bestV {
					best, bestV = k, occ[b][k]
				}
			}
			if best < 0 {
				row[b] = ' '
			} else {
				row[b] = timelineGlyphs[best]
			}
		}
		fmt.Fprintf(&sb, "%-*s  |%s|\n", labelW, label(id), row)
	}
	fmt.Fprintf(&sb, "%-*s   [#]=compute [=]=comm [+]=sync [.]=idle\n", labelW, "")
	return sb.String()
}

// timeAxis renders tick marks for the header row.
func timeAxis(t0, t1 float64, width int) string {
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = '-'
	}
	stamp := func(pos int, v float64) {
		s := fmt.Sprintf("%.3g", v)
		if pos+len(s) > width {
			pos = width - len(s)
		}
		if pos < 0 {
			pos = 0
		}
		copy(axis[pos:], s)
	}
	stamp(0, t0)
	stamp(width/2, (t0+t1)/2)
	stamp(width-6, t1)
	return string(axis)
}
