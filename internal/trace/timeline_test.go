package trace

import (
	"strings"
	"testing"

	"opalperf/internal/vm"
)

func TestRenderTimelineBasic(t *testing.T) {
	r := NewRecorder()
	// Proc 0: compute [0,5], comm [5,6]; proc 1: idle [0,5], compute [5,10].
	r.Segment(0, "client", vm.SegCompute, 0, 5)
	r.Segment(0, "client", vm.SegComm, 5, 6)
	r.Segment(1, "server", vm.SegIdle, 0, 5)
	r.Segment(1, "server", vm.SegCompute, 5, 10)
	out := RenderTimeline(r, map[int]string{0: "client", 1: "server"}, 0, 10, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // axis + 2 procs + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "client") || !strings.Contains(lines[2], "server") {
		t.Errorf("labels missing:\n%s", out)
	}
	// Client row: first half compute '#', then a '=' column.
	clientRow := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasPrefix(clientRow, "##########") {
		t.Errorf("client row = %q", clientRow)
	}
	if !strings.Contains(clientRow, "=") {
		t.Errorf("client comm missing: %q", clientRow)
	}
	// Server row: idle then compute.
	serverRow := lines[2][strings.Index(lines[2], "|")+1:]
	if !strings.HasPrefix(serverRow, "..........") {
		t.Errorf("server row = %q", serverRow)
	}
	if !strings.Contains(serverRow, "##########") {
		t.Errorf("server compute missing: %q", serverRow)
	}
	if !strings.Contains(out, "[#]=compute") {
		t.Error("legend missing")
	}
}

func TestRenderTimelineWindowClipping(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "p", vm.SegCompute, 0, 100)
	out := RenderTimeline(r, nil, 40, 60, 10)
	row := strings.Split(out, "\n")[1]
	body := row[strings.Index(row, "|")+1:]
	if !strings.HasPrefix(body, "##########") {
		t.Errorf("clipped row = %q", body)
	}
}

func TestRenderTimelineEmptyAndDegenerate(t *testing.T) {
	r := NewRecorder()
	if RenderTimeline(r, nil, 0, 1, 10) != "" {
		t.Error("empty recorder should render nothing")
	}
	r.Segment(0, "p", vm.SegCompute, 0, 1)
	if RenderTimeline(r, nil, 5, 5, 10) != "" {
		t.Error("degenerate window should render nothing")
	}
	// Default name and width.
	out := RenderTimeline(r, nil, 0, 1, 0)
	if !strings.Contains(out, "proc 0") {
		t.Errorf("default label missing:\n%s", out)
	}
}

func TestRenderTimelineGapsBlank(t *testing.T) {
	r := NewRecorder()
	r.Segment(0, "p", vm.SegCompute, 0, 2)
	r.Segment(0, "p", vm.SegCompute, 8, 10)
	out := RenderTimeline(r, nil, 0, 10, 10)
	row := strings.Split(out, "\n")[1]
	body := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if !strings.Contains(body, " ") {
		t.Errorf("gap not blank: %q", body)
	}
	if body[0] != '#' || body[9] != '#' {
		t.Errorf("ends wrong: %q", body)
	}
}

func TestTimeAxisStamps(t *testing.T) {
	ax := timeAxis(0, 10, 40)
	if len(ax) != 40 {
		t.Fatalf("axis width = %d", len(ax))
	}
	if !strings.Contains(ax, "0") || !strings.Contains(ax, "5") || !strings.Contains(ax, "10") {
		t.Errorf("axis = %q", ax)
	}
}
