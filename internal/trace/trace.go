// Package trace records classified spans of (virtual or real) execution
// time per process and aggregates them into the detailed execution-time
// breakdowns of the paper's Figures 1 and 2: parallel computation,
// sequential computation, communication, synchronization and idle time.
//
// It is the Go equivalent of the performance instrumentation the authors
// integrated into the Sciddle middleware (Section 3): because the
// middleware is instrumented — rather than an external sampling tool — the
// client/server structure and the accounting barriers are visible to the
// recorder and every second of wall-clock time can be attributed.
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"opalperf/internal/telemetry"
	"opalperf/internal/vm"
)

// Segment is one classified span of one process's timeline.
type Segment struct {
	Proc  int
	Name  string
	Kind  vm.SegKind
	Start float64
	End   float64
}

// Duration returns the span length.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Flow links one client RPC call to its execution on a server: the client
// issues the request at Issue and receives the reply at Reply.  Flows let
// the Chrome exporter draw arrows from call spans to the matching server
// execution spans and let the critical-path reducer attribute client wait
// time to the server that caused it.
type Flow struct {
	ID     int
	Method string
	Client int
	Server int
	Issue  float64
	Reply  float64
}

// Recorder implements vm.Tracer and accumulates segments.  It is safe for
// concurrent use so that the real-goroutine PVM fabric can share it.
type Recorder struct {
	mu    sync.Mutex
	segs  []Segment
	flows []Flow
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Segment implements vm.Tracer.
func (r *Recorder) Segment(proc int, name string, kind vm.SegKind, start, end float64) {
	telemetry.RankSegment(proc, int(kind), end-start)
	r.mu.Lock()
	r.segs = append(r.segs, Segment{Proc: proc, Name: name, Kind: kind, Start: start, End: end})
	r.mu.Unlock()
}

// Segments returns a copy of all recorded segments in recording order.
// The result is always non-nil: an empty recorder yields an empty,
// non-nil slice, so callers can range, marshal and append without a nil
// check.
func (r *Recorder) Segments() []Segment {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Segment, len(r.segs))
	copy(out, r.segs)
	return out
}

// Reset discards all recorded segments and flows while retaining the
// backing arrays' capacity, so a recorder reused across measurement
// windows (e.g. via md.Options.AfterInit) reaches a steady state where
// recording allocates nothing.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.segs = r.segs[:0]
	r.flows = r.flows[:0]
	r.mu.Unlock()
}

// Flow records one client→server RPC flow; IDs are assigned in recording
// order.
func (r *Recorder) Flow(method string, client, server int, issue, reply float64) {
	r.mu.Lock()
	r.flows = append(r.flows, Flow{
		ID: len(r.flows), Method: method,
		Client: client, Server: server, Issue: issue, Reply: reply,
	})
	r.mu.Unlock()
}

// Flows returns a copy of all recorded flows in recording order; like
// Segments the result is non-nil.
func (r *Recorder) Flows() []Flow {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Flow, len(r.flows))
	copy(out, r.flows)
	return out
}

// Totals sums the recorded time per kind for one process.
func (r *Recorder) Totals(proc int) [vm.NumSegKinds]float64 {
	return r.TotalsBetween(proc, math.Inf(-1), math.Inf(1))
}

// TotalsBetween sums the per-kind time of one process clipped to the
// window [t0, t1] — the measurement window of a run, excluding the
// amortized initialization before t0 and the shutdown after t1.
func (r *Recorder) TotalsBetween(proc int, t0, t1 float64) [vm.NumSegKinds]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t [vm.NumSegKinds]float64
	for _, s := range r.segs {
		if s.Proc != proc {
			continue
		}
		start, end := s.Start, s.End
		if start < t0 {
			start = t0
		}
		if end > t1 {
			end = t1
		}
		if end > start {
			t[s.Kind] += end - start
		}
	}
	return t
}

// Procs returns the sorted ids of all processes with recorded segments.
func (r *Recorder) Procs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[int]bool{}
	for _, s := range r.segs {
		seen[s.Proc] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Breakdown is the paper's decomposition of the wall-clock execution time,
// t_OPAL = t_par_comp + t_seq_comp + t_comm + t_sync (+ idle), measured
// rather than modelled.  All values are seconds.
type Breakdown struct {
	Wall float64
	// ParComp is the parallel computation time: the mean over the servers
	// of their computing time (the work one server contributes to the
	// critical path when perfectly balanced).
	ParComp float64
	// MaxParComp is the busiest server's computing time; the gap to
	// ParComp is load imbalance and surfaces in Idle.
	MaxParComp float64
	// MinParComp is the least-loaded server's computing time.
	MinParComp float64
	// SeqComp is the client's own computation time.
	SeqComp float64
	// Comm is the total communication time of eq. 6: the client's call
	// transfers plus the servers' return transfers (which serialize
	// through the shared channel while the client waits, so they are
	// disjoint wall-clock spans).
	Comm float64
	// Sync is the client's synchronization time (the accounting barriers).
	Sync float64
	// Recovery is the time spent absorbing injected faults across the
	// client and all servers: retransmissions, crash-recovery windows and
	// straggler delays (vm.SegRecovery).  Exactly zero in fault-free runs.
	Recovery float64
	// Idle is the remainder of the wall clock: the client waiting for
	// servers, which grows with load imbalance.
	Idle float64
	// Servers is the number of server processes aggregated.
	Servers int
}

// ComputeBreakdown aggregates a recorder into the paper's five response
// variables.  clientID identifies the client process; serverIDs the
// servers; wall is the wall-clock time of the run (e.g. kernel.MaxTime()).
func ComputeBreakdown(r *Recorder, clientID int, serverIDs []int, wall float64) Breakdown {
	return ComputeBreakdownBetween(r, clientID, serverIDs, math.Inf(-1), math.Inf(1), wall)
}

// ComputeBreakdownBetween aggregates only the window [t0, t1] of the
// recorded timelines: the simulation phase of a run, excluding start-up
// and shutdown traffic.
func ComputeBreakdownBetween(r *Recorder, clientID int, serverIDs []int, t0, t1, wall float64) Breakdown {
	b := Breakdown{Wall: wall, Servers: len(serverIDs)}
	ct := r.TotalsBetween(clientID, t0, t1)
	b.SeqComp = ct[vm.SegCompute] + ct[vm.SegOther]
	b.Comm = ct[vm.SegComm]
	b.Sync = ct[vm.SegSync]
	b.Recovery = ct[vm.SegRecovery]
	if len(serverIDs) > 0 {
		b.MinParComp = -1
		var sum float64
		for _, id := range serverIDs {
			st := r.TotalsBetween(id, t0, t1)
			c := st[vm.SegCompute] + st[vm.SegOther]
			sum += c
			if c > b.MaxParComp {
				b.MaxParComp = c
			}
			if b.MinParComp < 0 || c < b.MinParComp {
				b.MinParComp = c
			}
			// The servers' reply transfers count as communication (they
			// occupy the shared channel while the client waits).
			b.Comm += st[vm.SegComm]
			// The servers' fault-recovery time is part of the run's
			// recovery cost: the client waits it out on the critical path.
			b.Recovery += st[vm.SegRecovery]
		}
		b.ParComp = sum / float64(len(serverIDs))
		if b.MinParComp < 0 {
			b.MinParComp = 0
		}
	}
	b.Idle = wall - b.ParComp - b.SeqComp - b.Comm - b.Sync - b.Recovery
	if b.Idle < 0 {
		b.Idle = 0
	}
	return b
}

// Imbalance returns the relative load imbalance across servers,
// (max-mean)/mean, the quantity in which the paper's even-server anomaly
// is visible.  Zero when there are no servers or no parallel work.
func (b Breakdown) Imbalance() float64 {
	if b.ParComp <= 0 {
		return 0
	}
	return (b.MaxParComp - b.ParComp) / b.ParComp
}

// Components returns the breakdown in the paper's chart order with labels.
// The five classic components only — the order and shape of the paper's
// Figures 1-2 — so fault-free renderings are unchanged; use
// ComponentsWithRecovery for figures of faulted runs.
func (b Breakdown) Components() ([]string, []float64) {
	return []string{"par comp", "seq comp", "comm", "sync", "idle"},
		[]float64{b.ParComp, b.SeqComp, b.Comm, b.Sync, b.Idle}
}

// ComponentsWithRecovery returns the six-way breakdown including the
// fault-recovery component.
func (b Breakdown) ComponentsWithRecovery() ([]string, []float64) {
	return []string{"par comp", "seq comp", "comm", "sync", "recovery", "idle"},
		[]float64{b.ParComp, b.SeqComp, b.Comm, b.Sync, b.Recovery, b.Idle}
}

// Sum returns the accounted total (which equals Wall up to the clamping of
// negative idle).
func (b Breakdown) Sum() float64 {
	return b.ParComp + b.SeqComp + b.Comm + b.Sync + b.Recovery + b.Idle
}

func (b Breakdown) String() string {
	s := fmt.Sprintf("wall %.3fs = par %.3f + seq %.3f + comm %.3f + sync %.3f + idle %.3f (imbalance %.1f%%)",
		b.Wall, b.ParComp, b.SeqComp, b.Comm, b.Sync, b.Idle, 100*b.Imbalance())
	if b.Recovery != 0 {
		s += fmt.Sprintf(" + recovery %.3f", b.Recovery)
	}
	return s
}
