package trace

import (
	"math"
	"strings"
	"testing"

	"opalperf/internal/vm"
)

func rec(segs ...Segment) *Recorder {
	r := NewRecorder()
	for _, s := range segs {
		r.Segment(s.Proc, s.Name, s.Kind, s.Start, s.End)
	}
	return r
}

func TestTotalsPerKind(t *testing.T) {
	r := rec(
		Segment{Proc: 0, Kind: vm.SegCompute, Start: 0, End: 2},
		Segment{Proc: 0, Kind: vm.SegComm, Start: 2, End: 3},
		Segment{Proc: 0, Kind: vm.SegCompute, Start: 3, End: 4.5},
		Segment{Proc: 1, Kind: vm.SegCompute, Start: 0, End: 10},
	)
	tot := r.Totals(0)
	if tot[vm.SegCompute] != 3.5 || tot[vm.SegComm] != 1 {
		t.Errorf("totals = %v", tot)
	}
	if r.Totals(1)[vm.SegCompute] != 10 {
		t.Error("proc 1 totals wrong")
	}
	if r.Totals(99) != ([vm.NumSegKinds]float64{}) {
		t.Error("unknown proc should have zero totals")
	}
}

func TestProcsSorted(t *testing.T) {
	r := rec(
		Segment{Proc: 5, Kind: vm.SegCompute, Start: 0, End: 1},
		Segment{Proc: 1, Kind: vm.SegCompute, Start: 0, End: 1},
		Segment{Proc: 5, Kind: vm.SegIdle, Start: 1, End: 2},
	)
	got := r.Procs()
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("procs = %v", got)
	}
}

func TestReset(t *testing.T) {
	r := rec(Segment{Proc: 0, Kind: vm.SegCompute, Start: 0, End: 1})
	r.Reset()
	if len(r.Segments()) != 0 {
		t.Error("reset did not clear segments")
	}
}

func TestComputeBreakdown(t *testing.T) {
	// Client 0: 1s compute, 2s comm, 0.5s sync.
	// Servers 1, 2: 6s and 8s compute.
	r := rec(
		Segment{Proc: 0, Kind: vm.SegCompute, Start: 0, End: 1},
		Segment{Proc: 0, Kind: vm.SegComm, Start: 1, End: 3},
		Segment{Proc: 0, Kind: vm.SegSync, Start: 3, End: 3.5},
		Segment{Proc: 1, Kind: vm.SegCompute, Start: 0, End: 6},
		Segment{Proc: 2, Kind: vm.SegCompute, Start: 0, End: 8},
	)
	b := ComputeBreakdown(r, 0, []int{1, 2}, 12)
	if b.ParComp != 7 || b.MaxParComp != 8 || b.MinParComp != 6 {
		t.Errorf("par = %v max = %v min = %v", b.ParComp, b.MaxParComp, b.MinParComp)
	}
	if b.SeqComp != 1 || b.Comm != 2 || b.Sync != 0.5 {
		t.Errorf("seq/comm/sync = %v/%v/%v", b.SeqComp, b.Comm, b.Sync)
	}
	wantIdle := 12 - 7 - 1 - 2 - 0.5
	if math.Abs(b.Idle-wantIdle) > 1e-12 {
		t.Errorf("idle = %v, want %v", b.Idle, wantIdle)
	}
	if math.Abs(b.Sum()-12) > 1e-12 {
		t.Errorf("sum = %v, want wall 12", b.Sum())
	}
	if math.Abs(b.Imbalance()-1.0/7.0) > 1e-12 {
		t.Errorf("imbalance = %v", b.Imbalance())
	}
}

func TestBreakdownNoServers(t *testing.T) {
	r := rec(Segment{Proc: 0, Kind: vm.SegCompute, Start: 0, End: 4})
	b := ComputeBreakdown(r, 0, nil, 4)
	if b.ParComp != 0 || b.SeqComp != 4 || b.Idle != 0 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.Imbalance() != 0 {
		t.Error("imbalance of serial run should be 0")
	}
}

func TestBreakdownNegativeIdleClamped(t *testing.T) {
	// Accounted client time exceeds the reported wall clock: idle clamps
	// to zero rather than going negative.
	r := rec(
		Segment{Proc: 0, Kind: vm.SegCompute, Start: 0, End: 10},
	)
	b := ComputeBreakdown(r, 0, nil, 5)
	if b.Idle != 0 {
		t.Errorf("idle = %v, want 0", b.Idle)
	}
}

func TestBreakdownOtherCountsAsCompute(t *testing.T) {
	r := rec(
		Segment{Proc: 0, Kind: vm.SegOther, Start: 0, End: 2},
		Segment{Proc: 1, Kind: vm.SegOther, Start: 0, End: 3},
	)
	b := ComputeBreakdown(r, 0, []int{1}, 3)
	if b.SeqComp != 2 || b.ParComp != 3 {
		t.Errorf("other not folded into compute: %+v", b)
	}
}

func TestComponentsOrder(t *testing.T) {
	b := Breakdown{ParComp: 1, SeqComp: 2, Comm: 3, Sync: 4, Idle: 5}
	names, vals := b.Components()
	if names[0] != "par comp" || vals[4] != 5 {
		t.Errorf("components = %v %v", names, vals)
	}
	if len(names) != len(vals) {
		t.Error("length mismatch")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Wall: 1, ParComp: 0.5}
	if !strings.Contains(b.String(), "wall") {
		t.Error("String missing wall")
	}
}

func TestRecorderWithKernel(t *testing.T) {
	r := NewRecorder()
	k := vm.NewKernel(vm.FixedCost{Overhead: 0.5, SyncDelay: 0.1}, r)
	k.NewProc("client", vm.ConstRate(1), func(p *vm.Proc) {
		p.Compute(2)
		p.Send(1, 0, nil, 0)
		p.Recv(vm.MatchSrcTag(1, 1))
		p.Barrier("end", 2)
	})
	k.NewProc("server", vm.ConstRate(1), func(p *vm.Proc) {
		p.Recv(nil)
		p.Compute(5)
		p.Send(0, 1, nil, 0)
		p.Barrier("end", 2)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	b := ComputeBreakdown(r, 0, []int{1}, k.MaxTime())
	if b.SeqComp != 2 || b.ParComp != 5 {
		t.Errorf("breakdown = %+v", b)
	}
	// Comm counts both directions: client request (0.5) + server reply
	// (0.5).
	if math.Abs(b.Comm-1.0) > 1e-9 {
		t.Errorf("comm = %v, want 1.0", b.Comm)
	}
	if b.Sync <= 0 {
		t.Error("client should have sync time from the barrier")
	}
	// Everything accounted: sum equals wall and the idle residual is
	// zero for this fully serialized exchange.
	if math.Abs(b.Sum()-b.Wall) > 1e-9 {
		t.Errorf("sum %v != wall %v", b.Sum(), b.Wall)
	}
	if b.Idle > 1e-9 {
		t.Errorf("idle = %v, want 0", b.Idle)
	}
}

func TestSegmentsNonNilWhenEmpty(t *testing.T) {
	r := NewRecorder()
	if got := r.Segments(); got == nil || len(got) != 0 {
		t.Fatalf("empty recorder Segments() = %#v, want non-nil empty slice", got)
	}
	r.Segment(0, "p", vm.SegCompute, 0, 1)
	r.Reset()
	if got := r.Segments(); got == nil || len(got) != 0 {
		t.Fatalf("reset recorder Segments() = %#v, want non-nil empty slice", got)
	}
}

func TestResetRetainsCapacity(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 1000; i++ {
		r.Segment(0, "p", vm.SegCompute, float64(i), float64(i)+0.5)
	}
	before := cap(r.segs)
	if before < 1000 {
		t.Fatalf("capacity %d after 1000 segments", before)
	}
	r.Reset()
	if len(r.segs) != 0 {
		t.Fatalf("len %d after Reset", len(r.segs))
	}
	if cap(r.segs) != before {
		t.Fatalf("Reset changed capacity %d -> %d", before, cap(r.segs))
	}
	// Refilling to the previous length must not grow the backing array.
	allocs := testing.AllocsPerRun(1, func() {
		r.Reset()
		for i := 0; i < 1000; i++ {
			r.Segment(0, "p", vm.SegCompute, float64(i), float64(i)+0.5)
		}
	})
	if allocs != 0 {
		t.Fatalf("recording into reset recorder allocated %.0f times per run", allocs)
	}
}
