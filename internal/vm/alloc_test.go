package vm

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// TestMessagingSteadyStateAllocs is the message-freelist audit: once the
// freelist and mailboxes are warm, a request/reply exchange must not
// allocate — Messages are recycled through Kernel.Recycle, the ready
// heap reuses its backing array, and receive matching for the (src, tag)
// shape is inline.  A regression here silently turns every simulated
// message into garbage-collector load, which is exactly what the
// scenario-throughput gate would pay for.
func TestMessagingSteadyStateAllocs(t *testing.T) {
	const warm, measured = 200, 1000
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	cm := FixedCost{Overhead: 1e-6, ByteRate: 1e9, Latency: 1e-6}
	k := NewKernel(cm, nil)
	var payload any = "x" // constant payload: boxing allocates nothing
	var perExchange float64
	k.NewProc("client", nil, func(p *Proc) {
		exchange := func() {
			p.Send(1, 1, payload, 64)
			m := p.RecvSrcTag(1, 2)
			p.Kernel().Recycle(m)
		}
		for i := 0; i < warm; i++ {
			exchange()
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < measured; i++ {
			exchange()
		}
		runtime.ReadMemStats(&m1)
		perExchange = float64(m1.Mallocs-m0.Mallocs) / measured
	})
	k.NewProc("server", nil, func(p *Proc) {
		for i := 0; i < warm+measured; i++ {
			m := p.RecvSrcTag(0, 1)
			pl := m.Payload
			p.Kernel().Recycle(m)
			p.Send(0, 2, pl, 64)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The budget tolerates stray runtime bookkeeping but not a per-message
	// allocation (which would show up as >= 2 here: one per direction).
	if perExchange > 0.1 {
		t.Fatalf("steady-state request/reply exchange allocates %.3f objects; the message freelist is leaking", perExchange)
	}
}
