package vm

import (
	"fmt"
	"testing"
)

// TestSharedChannelSerializesTransfers: two senders transmitting at the
// same instant occupy the channel back to back, not concurrently.
func TestSharedChannelSerializesTransfers(t *testing.T) {
	cm := FixedCost{Overhead: 1.0} // 1 s per transfer
	k := NewKernel(cm, nil)
	ends := make([]Time, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.NewProc(fmt.Sprintf("s%d", i), nil, func(p *Proc) {
			p.Send(2, i, nil, 0)
			ends[i] = p.Now()
		})
	}
	k.NewProc("r", nil, func(p *Proc) {
		p.Recv(nil)
		p.Recv(nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// First sender (id 0) transfers [0,1]; second queues and transfers
	// [1,2].
	if ends[0] != 1 || ends[1] != 2 {
		t.Errorf("send ends = %v, want [1 2]", ends)
	}
}

// TestQueueingClassifiedAsIdle: the wait for the channel is idle time;
// only the transfer itself is communication.
func TestQueueingClassifiedAsIdle(t *testing.T) {
	cm := FixedCost{Overhead: 2.0}
	k := NewKernel(cm, nil)
	var stats Stats
	k.NewProc("first", nil, func(p *Proc) {
		p.Send(2, 0, nil, 0) // occupies [0,2]
	})
	k.NewProc("second", nil, func(p *Proc) {
		p.Send(2, 1, nil, 0) // queues [0,2], transfers [2,4]
		stats = p.Stats()
	})
	k.NewProc("r", nil, func(p *Proc) {
		p.Recv(nil)
		p.Recv(nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(stats.Seg[SegIdle], 2) {
		t.Errorf("queueing idle = %v, want 2", stats.Seg[SegIdle])
	}
	if !almostEq(stats.Seg[SegComm], 2) {
		t.Errorf("transfer comm = %v, want 2", stats.Seg[SegComm])
	}
}

// TestZeroCostSendsDoNotContend: free messages (nil comm model) leave the
// channel untouched.
func TestZeroCostSendsDoNotContend(t *testing.T) {
	k := NewKernel(nil, nil)
	var end Time
	k.NewProc("s", nil, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Send(1, i, nil, 1<<20)
		}
		end = p.Now()
	})
	k.NewProc("r", nil, func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Recv(nil)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("zero-cost sends advanced the clock to %v", end)
	}
}

// TestSendCausalOrder: a process that has run far ahead in virtual time
// must not capture the channel before a slower process's earlier send —
// the yield-before-send rule.
func TestSendCausalOrder(t *testing.T) {
	cm := FixedCost{Overhead: 0.5}
	k := NewKernel(cm, nil)
	var lateArrival, earlyArrival Time
	k.NewProc("late", ConstRate(1), func(p *Proc) {
		p.Compute(100) // runs ahead to t=100 in one burst
		p.Send(2, 7, "late", 0)
	})
	k.NewProc("early", ConstRate(1), func(p *Proc) {
		p.Compute(1)
		p.Send(2, 7, "early", 0)
	})
	k.NewProc("r", nil, func(p *Proc) {
		m1 := p.Recv(nil)
		m2 := p.Recv(nil)
		if m1.Payload.(string) != "early" {
			t.Errorf("first delivery = %v, want early", m1.Payload)
		}
		earlyArrival, lateArrival = m1.Arrival, m2.Arrival
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Early sends [1, 1.5]; late sends [100, 100.5] — the early transfer
	// must not be pushed behind the late one.
	if !almostEq(earlyArrival, 1.5) {
		t.Errorf("early arrival = %v, want 1.5", earlyArrival)
	}
	if !almostEq(lateArrival, 100.5) {
		t.Errorf("late arrival = %v, want 100.5", lateArrival)
	}
}

// TestChannelGapIsNotCarriedForward: after the channel drains, a later
// send starts immediately at the sender's clock.
func TestChannelGapIsNotCarriedForward(t *testing.T) {
	cm := FixedCost{Overhead: 1}
	k := NewKernel(cm, nil)
	var end Time
	k.NewProc("s", ConstRate(1), func(p *Proc) {
		p.Send(1, 0, nil, 0) // [0,1]
		p.Compute(10)        // now 11
		p.Send(1, 1, nil, 0) // channel long free: [11,12]
		end = p.Now()
	})
	k.NewProc("r", nil, func(p *Proc) {
		p.Recv(nil)
		p.Recv(nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(end, 12) {
		t.Errorf("end = %v, want 12", end)
	}
}

// TestManySendersFairSerialization: p senders firing together finish in
// id order at k*d each, and the makespan equals the total occupancy.
func TestManySendersFairSerialization(t *testing.T) {
	const p = 5
	const d = 0.25
	cm := FixedCost{Overhead: d}
	k := NewKernel(cm, nil)
	ends := make([]Time, p)
	for i := 0; i < p; i++ {
		i := i
		k.NewProc(fmt.Sprintf("s%d", i), nil, func(pr *Proc) {
			pr.Send(p, i, nil, 0)
			ends[i] = pr.Now()
		})
	}
	k.NewProc("sink", nil, func(pr *Proc) {
		for i := 0; i < p; i++ {
			pr.Recv(nil)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		if !almostEq(e, d*float64(i+1)) {
			t.Errorf("sender %d ends at %v, want %v", i, e, d*float64(i+1))
		}
	}
}
