package vm

import (
	"math"
	"testing"
)

// scriptFaults is a hand-written FaultModel with a fixed schedule, so the
// kernel-side accounting can be asserted exactly.
type scriptFaults struct {
	sendDelay  float64
	sendResend float64
	crash      float64
	straggle   float64
	calls      struct{ send, compute, barrier int }
}

func (f *scriptFaults) SendFault(src, dst, tag, bytes int) (float64, float64) {
	f.calls.send++
	return f.sendDelay, f.sendResend
}
func (f *scriptFaults) ComputeFault(proc int) float64 {
	f.calls.compute++
	return f.crash
}
func (f *scriptFaults) BarrierFault(proc int) float64 {
	f.calls.barrier++
	return f.straggle
}

func runPingPong(t *testing.T, fm FaultModel) (*Kernel, [2]Stats) {
	t.Helper()
	k := NewKernel(FixedCost{Overhead: 1e-3, ByteRate: 1e6, Latency: 1e-4, SyncDelay: 1e-4}, nil)
	k.SetFaults(fm)
	var stats [2]Stats
	k.NewProc("a", ConstRate(1e6), func(p *Proc) {
		p.Compute(1000)
		p.Send(1, 7, "hi", 100)
		m := p.Recv(MatchSrcTag(1, 8))
		_ = m
		p.Barrier("end", 2)
		stats[0] = p.Stats()
	})
	k.NewProc("b", ConstRate(1e6), func(p *Proc) {
		m := p.Recv(MatchSrcTag(0, 7))
		_ = m
		p.Compute(500)
		p.Send(0, 8, "yo", 50)
		p.Barrier("end", 2)
		stats[1] = p.Stats()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k, stats
}

func TestNilFaultsBitIdenticalToNoFaults(t *testing.T) {
	k1, s1 := runPingPong(t, nil)
	k2, s2 := runPingPong(t, &scriptFaults{}) // zero schedule
	if k1.MaxTime() != k2.MaxTime() {
		t.Fatalf("makespan differs: %v vs %v", k1.MaxTime(), k2.MaxTime())
	}
	if s1 != s2 {
		t.Fatalf("stats differ:\nnil:  %+v\nzero: %+v", s1, s2)
	}
	for i := range s1 {
		if s1[i].Seg[SegRecovery] != 0 {
			t.Fatalf("proc %d has recovery time without faults", i)
		}
	}
}

func TestSendDelayStretchesArrivalOnly(t *testing.T) {
	const d = 0.25
	k0, s0 := runPingPong(t, nil)
	k1, s1 := runPingPong(t, &scriptFaults{sendDelay: d})
	// Two delayed sends on the critical path: the makespan grows by 2d.
	if got, want := k1.MaxTime()-k0.MaxTime(), 2*d; math.Abs(got-want) > 1e-12 {
		t.Fatalf("makespan stretch = %v, want %v", got, want)
	}
	// Nobody is charged recovery for a pure delay: the receiver just idles.
	for i := range s1 {
		if s1[i].Seg[SegRecovery] != 0 {
			t.Fatalf("proc %d charged recovery %v for a delay", i, s1[i].Seg[SegRecovery])
		}
		if s1[i].Seg[SegIdle] <= s0[i].Seg[SegIdle] {
			t.Fatalf("proc %d idle did not grow under delay", i)
		}
	}
}

func TestResendChargedAsRecovery(t *testing.T) {
	const r = 0.125
	_, s := runPingPong(t, &scriptFaults{sendResend: r})
	if got := s[0].Seg[SegRecovery]; math.Abs(got-r) > 1e-12 {
		t.Fatalf("proc 0 recovery = %v, want %v (one resend)", got, r)
	}
	if got := s[1].Seg[SegRecovery]; math.Abs(got-r) > 1e-12 {
		t.Fatalf("proc 1 recovery = %v, want %v (one resend)", got, r)
	}
}

func TestCrashAndStragglerAttributedAsRecovery(t *testing.T) {
	fm := &scriptFaults{crash: 0.5, straggle: 0.0625}
	_, s := runPingPong(t, fm)
	// Proc 0 computes once and barriers once; proc 1 the same.
	for i := range s {
		want := 0.5 + 0.0625
		if got := s[i].Seg[SegRecovery]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("proc %d recovery = %v, want %v", i, got, want)
		}
	}
	if fm.calls.compute != 2 || fm.calls.barrier != 2 || fm.calls.send != 2 {
		t.Fatalf("hook calls = %+v", fm.calls)
	}
}

func TestFaultedRunsDeterministic(t *testing.T) {
	// The same scripted schedule twice: identical makespan and stats.
	k1, s1 := runPingPong(t, &scriptFaults{sendDelay: 1e-3, sendResend: 1e-4, crash: 1e-2, straggle: 1e-3})
	k2, s2 := runPingPong(t, &scriptFaults{sendDelay: 1e-3, sendResend: 1e-4, crash: 1e-2, straggle: 1e-3})
	if k1.MaxTime() != k2.MaxTime() || s1 != s2 {
		t.Fatal("identical fault schedules produced different timelines")
	}
}

func TestSetFaultsWhileRunningPanics(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("p", nil, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("SetFaults during Run did not panic")
			}
		}()
		p.k.SetFaults(&scriptFaults{})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
