// Package vm implements a deterministic, process-oriented discrete-event
// simulation kernel with virtual clocks.
//
// The kernel stands in for the hardware platforms of the paper (Cray J90,
// Cray T3E-900 and the three Cluster-of-PCs flavours) that are no longer
// available.  Every simulated process (a PVM task in the layers above) is a
// goroutine with a local virtual clock.  Exactly one process executes at any
// instant; control is handed over through channels and the kernel always
// resumes the runnable process with the smallest local time (ties broken by
// process id), which makes simulations reproducible bit for bit.
//
// Virtual time is charged through a pluggable cost model:
//
//   - Compute(flops) advances the local clock by seconds obtained from the
//     process's ComputeModel (which may depend on the current working set,
//     modelling the memory hierarchy of Section 2.6 of the paper);
//   - Send charges the sender `busy` seconds and stamps the message with an
//     arrival time `busy+latency` later, per the paper's t = b1 + bytes/a1
//     communication model;
//   - Recv blocks until the earliest-arriving matching message is safe to
//     deliver;
//   - Barrier releases all member processes at max(arrival)+syncCost and
//     classifies the wait as idle and the release as synchronization, which
//     is exactly the accounting instrumentation the paper added to Sciddle.
package vm

import (
	"fmt"
	"sort"
	"strings"
)

// Time is virtual time in seconds.
type Time = float64

// SegKind classifies a span of a process's virtual timeline.  The five kinds
// correspond to the five response variables of the paper's experimental
// design (Section 2.3): computation, communication, synchronization and idle
// time; SegOther covers bookkeeping that the paper folds into computation.
type SegKind int

const (
	// SegCompute is time spent computing (parallel or sequential work).
	SegCompute SegKind = iota
	// SegComm is time spent inside communication primitives.
	SegComm
	// SegSync is time spent in the synchronization operation proper.
	SegSync
	// SegIdle is time spent waiting: for a message to arrive or for other
	// processes to reach a barrier (load imbalance).
	SegIdle
	// SegOther is uncategorized virtual time.
	SegOther
	// SegRecovery is time spent absorbing a fault: a spurious
	// retransmission occupying the shared channel, a crash-recovery
	// window, or a straggler delay before a barrier.  Zero in fault-free
	// runs, so the classic five-way breakdown is unchanged.
	SegRecovery
)

var segNames = [...]string{"compute", "comm", "sync", "idle", "other", "recovery"}

func (k SegKind) String() string {
	if int(k) < len(segNames) {
		return segNames[k]
	}
	return fmt.Sprintf("SegKind(%d)", int(k))
}

// NumSegKinds is the number of distinct segment kinds.
const NumSegKinds = 6

// Tracer receives every classified span of virtual time.  trace.Recorder is
// the canonical implementation; a nil tracer disables tracing.
type Tracer interface {
	Segment(proc int, name string, kind SegKind, start, end Time)
}

// Message is a unit of communication between processes.
type Message struct {
	Src, Dst int
	Tag      int
	Bytes    int // payload size used by the communication cost model
	Payload  any
	Arrival  Time
	seq      uint64 // global sequence number, breaks arrival ties
}

// CommModel prices point-to-point communication and barrier synchronization.
type CommModel interface {
	// SendCost returns the time the sender is busy transmitting (charged
	// to the sender as SegComm) and the additional latency before the
	// message becomes visible at the destination.
	SendCost(src, dst, bytes int) (busy, latency float64)
	// SyncCost returns the cost of one barrier synchronization of n
	// processes (the b5 parameter of the paper's model).
	SyncCost(n int) float64
}

// ComputeModel converts a floating-point operation count into virtual
// seconds, possibly dependent on the working-set size in bytes.
type ComputeModel interface {
	Seconds(flops float64, workingSet int) float64
}

// FaultModel injects faults into a simulation as deterministic virtual-time
// perturbations.  Because every hook is consulted from the process that
// holds the execution token — and the kernel's token hand-off order is
// itself deterministic — a seeded model yields bit-identical fault
// schedules run after run.  All faults are *recoverable by construction*:
// they stretch the timeline (retransmission delays, spurious resends,
// crash-recovery windows, stragglers) but never corrupt or reorder
// payloads, so simulated physics results are unchanged and every run that
// terminates fault-free also terminates under faults.  internal/fault
// provides the canonical seeded implementation.
type FaultModel interface {
	// SendFault is consulted once per Send.  delay is extra latency added
	// to the message's arrival (a dropped first copy recovered by a
	// retransmission after a retry timeout); resend is extra shared-channel
	// occupancy charged to the sender as SegRecovery (a spurious duplicate
	// transmission).  Return zeros for no fault.
	SendFault(src, dst, tag, bytes int) (delay, resend float64)
	// ComputeFault is consulted once per Compute burst; a positive return
	// freezes the process for that many virtual seconds (a task crash
	// followed by checkpoint restart on a hot spare), classified as
	// SegRecovery.
	ComputeFault(proc int) float64
	// BarrierFault is consulted once per Barrier entry; a positive return
	// delays the process's arrival by that many seconds (a straggler),
	// classified as SegRecovery.
	BarrierFault(proc int) float64
}

// FixedCost is a trivial CommModel with constant per-message overhead, a
// fixed bandwidth and a fixed barrier cost.  The platform package provides
// richer models; FixedCost is convenient for tests.
type FixedCost struct {
	Overhead  float64 // seconds per message (b1)
	ByteRate  float64 // bytes per second (a1)
	Latency   float64 // extra wire latency
	SyncDelay float64 // barrier cost (b5)
}

// SendCost implements CommModel.
func (f FixedCost) SendCost(src, dst, bytes int) (busy, latency float64) {
	busy = f.Overhead
	if f.ByteRate > 0 {
		busy += float64(bytes) / f.ByteRate
	}
	return busy, f.Latency
}

// SyncCost implements CommModel.
func (f FixedCost) SyncCost(n int) float64 { return f.SyncDelay }

// ConstRate is a ComputeModel with a flat rate in flop/s.
type ConstRate float64

// Seconds implements ComputeModel.
func (r ConstRate) Seconds(flops float64, ws int) float64 {
	if r <= 0 {
		return 0
	}
	return flops / float64(r)
}

type procState int

const (
	stateReady procState = iota
	stateRunning
	stateRecv
	stateBarrier
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateRecv:
		return "recv"
	case stateBarrier:
		return "barrier"
	case stateDone:
		return "done"
	}
	return "unknown"
}

// Stats accumulates per-process accounting maintained by the kernel in
// addition to any Tracer.
type Stats struct {
	Seg       [NumSegKinds]float64 // virtual seconds per segment kind
	MsgsSent  int
	BytesSent int
	MsgsRecv  int
	BytesRecv int
	Flops     float64 // flops charged through Compute
}

// Busy returns the total classified time (everything except untracked gaps).
func (s *Stats) Busy() float64 {
	var t float64
	for _, v := range s.Seg {
		t += v
	}
	return t
}

// Proc is a simulated process.  All methods must be called from the
// process's own goroutine while it holds the execution token (i.e. from
// inside the function passed to NewProc or Spawn).
type Proc struct {
	k       *Kernel
	id      int
	name    string
	now     Time
	compute ComputeModel
	ws      int // current working-set size in bytes
	stats   Stats

	state   procState
	resume  chan struct{}
	mailbox []*Message
	// Ready-queue bookkeeping: index into Kernel.ready (-1 when not
	// enqueued) and the cached scheduling key while enqueued.
	heapIdx int
	key     Time
	// Receive matching: either a predicate closure (Recv) or an inline
	// (src, tag) pair (RecvSrcTag), the latter so the common pvm_recv
	// shape allocates nothing.
	match              func(*Message) bool
	matchSrc, matchTag int
	got                *Message
	barrier            *barrier
	fn                 func(*Proc)
}

// ID returns the process id (0-based, dense).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at creation.
func (p *Proc) Name() string { return p.name }

// Now returns the process's local virtual time in seconds.
func (p *Proc) Now() Time { return p.now }

// Stats returns a snapshot of the process's accounting counters.
func (p *Proc) Stats() Stats { return p.stats }

// SetWorkingSet declares the process's current working-set size in bytes;
// the compute model may slow the process down when the working set spills
// out of cache or core memory (Section 2.6 of the paper).
func (p *Proc) SetWorkingSet(bytes int) { p.ws = bytes }

// WorkingSet returns the declared working-set size in bytes.
func (p *Proc) WorkingSet() int { return p.ws }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

func (p *Proc) segment(kind SegKind, start, end Time) {
	if end <= start {
		return
	}
	p.stats.Seg[kind] += end - start
	if p.k.tracer != nil {
		p.k.tracer.Segment(p.id, p.name, kind, start, end)
	}
}

// Compute advances the local clock by the cost of the given number of
// (platform-counted) floating-point operations.
func (p *Proc) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	if p.k.faults != nil {
		if r := p.k.faults.ComputeFault(p.id); r > 0 {
			p.Elapse(r, SegRecovery)
		}
	}
	var dt float64
	if p.compute != nil {
		dt = p.compute.Seconds(flops, p.ws)
	}
	p.stats.Flops += flops
	p.Elapse(dt, SegCompute)
}

// Span is one contiguous slice of virtual time with a classification,
// used by ElapseSpan to charge a precomputed multi-segment timeline.
type Span struct {
	D    float64
	Kind SegKind
}

// ElapseSpan advances the local clock through a precomputed sequence of
// contiguous segments in one call, with per-kind Stats accounting exactly
// as if each segment had been charged through Elapse individually.  This
// is the macro-event primitive of the level-of-detail layer: an entire
// analytically-derived phase (idle wait, channel occupancy, compute,
// synchronization) lands on the timeline without a single scheduler
// round-trip.
//
// Like Barrier release, ElapseSpan (and Elapse) may also be invoked on a
// quiesced, receive-blocked process by whichever process currently holds
// the execution token — the macro replay layer in pvm uses this to
// position server clocks from the client's goroutine.
func (p *Proc) ElapseSpan(spans ...Span) {
	for _, s := range spans {
		p.Elapse(s.D, s.Kind)
	}
}

// AccountSend adds n sent messages totalling bytes to the process's
// Stats counters without touching the timeline.  Macro replay layers use
// it to keep message accounting bit-identical to fine-grained execution
// when no Message objects are materialized.
func (p *Proc) AccountSend(n, bytes int) {
	p.stats.MsgsSent += n
	p.stats.BytesSent += bytes
}

// AccountRecv is the receive-side counterpart of AccountSend.
func (p *Proc) AccountRecv(n, bytes int) {
	p.stats.MsgsRecv += n
	p.stats.BytesRecv += bytes
}

// Waiting reports whether the process is blocked in a receive — the
// state a quiesced RPC server parks in between phases.  Macro replay
// layers use it to verify a fleet is safe to advance analytically.
func (p *Proc) Waiting() bool { return p.state == stateRecv }

// Elapse advances the local clock by d seconds classified as kind.
func (p *Proc) Elapse(d float64, kind SegKind) {
	if d < 0 {
		panic(fmt.Sprintf("vm: proc %d elapses negative time %g", p.id, d))
	}
	if d == 0 {
		return
	}
	start := p.now
	p.now += d
	p.segment(kind, start, p.now)
}

// Send transmits a message to the process with id dst.  The sender is
// charged busy time per the communication model; the message becomes
// receivable busy+latency after the call started.  Payload is shared by
// reference: simulated processes live in one address space, exactly like
// PVM tasks on a shared-memory Cray J90 node; the honest data volume must
// be declared in bytes for the cost model.
//
// Transfers with a non-zero cost contend for one shared communication
// channel (the single client-server channel whose contention the paper's
// accounting barriers expose, Section 3.3): a transfer starts no earlier
// than the previous one finished, and the queueing wait is classified as
// communication.  To keep the shared channel causally consistent, Send
// first yields to the scheduler so that all sends execute in global
// virtual-time order.
func (p *Proc) Send(dst, tag int, payload any, bytes int) {
	q := p.k.proc(dst)
	if q == nil {
		panic(fmt.Sprintf("vm: send to unknown proc %d", dst))
	}
	// Re-enter through the scheduler at our current time so that sends
	// from processes with earlier clocks hit the channel first.  When no
	// other process could be scheduled before us (the common steady-state
	// case), the round-trip is provably a no-op and is skipped.
	if !p.k.soleRunnable(p) {
		p.yield()
	}
	busy, latency := 0.0, 0.0
	if p.k.comm != nil {
		busy, latency = p.k.comm.SendCost(p.id, dst, bytes)
	}
	// Fault plane: a drop surfaces as extra arrival delay (the transport
	// retransmits after its retry timeout); a duplicate surfaces as a
	// spurious resend occupying the shared channel, charged to the sender
	// as recovery overhead.
	delay, resend := 0.0, 0.0
	if p.k.faults != nil {
		delay, resend = p.k.faults.SendFault(p.id, dst, tag, bytes)
	}
	start := p.now
	if busy+resend > 0 {
		if p.k.chanFree > start {
			// Queue behind the transfer in flight.  The wait is idle
			// time — the channel occupancy itself is what counts as
			// communication, once, at the occupying sender.
			p.segment(SegIdle, start, p.k.chanFree)
			start = p.k.chanFree
		}
		p.k.chanFree = start + busy + resend
	}
	end := start + busy
	p.segment(SegComm, start, end)
	if resend > 0 {
		p.segment(SegRecovery, end, end+resend)
		end += resend
	}
	p.now = end
	latency += delay
	p.stats.MsgsSent++
	p.stats.BytesSent += bytes
	m := p.k.newMessage()
	*m = Message{
		Src: p.id, Dst: dst, Tag: tag,
		Bytes: bytes, Payload: payload,
		Arrival: p.now + latency,
		seq:     p.k.nextSeq(),
	}
	q.mailbox = append(q.mailbox, m)
	p.k.noteArrival(q, m)
}

// noteArrival updates the ready queue after m was appended to q's
// mailbox: a receive-blocked process whose criterion matches becomes
// runnable at max(local time, arrival).  A later message can only carry
// a larger sequence number, so an already-enqueued receiver's key can
// only decrease.
func (k *Kernel) noteArrival(q *Proc, m *Message) {
	if q.state != stateRecv || !q.matches(m) {
		return
	}
	key := q.now
	if m.Arrival > key {
		key = m.Arrival
	}
	if q.heapIdx >= 0 {
		if key < q.key {
			k.heapDecrease(q, key)
		}
		return
	}
	k.heapPush(q, key)
}

// MatchAny matches every message.
func MatchAny(*Message) bool { return true }

// MatchSrcTag returns a match predicate for a (source, tag) pair; src or
// tag may be -1 to act as a wildcard, mirroring pvm_recv semantics.
func MatchSrcTag(src, tag int) func(*Message) bool {
	return func(m *Message) bool {
		return (src < 0 || m.Src == src) && (tag < 0 || m.Tag == tag)
	}
}

// Recv blocks until a message matching the predicate is deliverable and
// returns the earliest-arriving such message.  Waiting time is classified
// as SegIdle.  A nil match accepts any message.
func (p *Proc) Recv(match func(*Message) bool) *Message {
	if match == nil {
		match = MatchAny
	}
	p.match = match
	return p.recvWait()
}

// RecvSrcTag is Recv with the pvm_recv (source, tag) match inline — the
// hot receive shape — avoiding the per-call predicate closure.  Either
// may be -1 as a wildcard.
func (p *Proc) RecvSrcTag(src, tag int) *Message {
	p.match = nil
	p.matchSrc, p.matchTag = src, tag
	return p.recvWait()
}

// matches applies the pending receive criterion of a blocked process.
func (p *Proc) matches(m *Message) bool {
	if p.match != nil {
		return p.match(m)
	}
	return (p.matchSrc < 0 || m.Src == p.matchSrc) && (p.matchTag < 0 || m.Tag == p.matchTag)
}

func (p *Proc) recvWait() *Message {
	p.state = stateRecv
	// Fast path: a matching message is already queued and no other
	// process would be scheduled before this one at the delivery key, so
	// handing the token back would provably resume us immediately.
	var m *Message
	if best, ok := earliestMatch(p); ok {
		key := p.now
		if best.Arrival > key {
			key = best.Arrival
		}
		if p.k.soleRunnableAt(p, key) {
			p.removeMessage(best)
			p.state = stateRunning
			m = best
		}
	}
	if m == nil {
		p.yield()
		// The kernel has selected our earliest matching message and
		// stored it in p.got before resuming us.
		m = p.got
		p.got = nil
	}
	p.match = nil
	if m == nil {
		panic("vm: resumed from recv without a message")
	}
	if m.Arrival > p.now {
		p.segment(SegIdle, p.now, m.Arrival)
		p.now = m.Arrival
	}
	p.stats.MsgsRecv++
	p.stats.BytesRecv += m.Bytes
	return m
}

// Probe reports whether a matching message is already queued (regardless of
// its arrival time).  It does not advance time and does not block.
func (p *Proc) Probe(match func(*Message) bool) bool {
	if match == nil {
		match = MatchAny
	}
	for _, m := range p.mailbox {
		if match(m) {
			return true
		}
	}
	return false
}

// ProbeSrcTag is Probe with the (source, tag) match inline.
func (p *Proc) ProbeSrcTag(src, tag int) bool {
	for _, m := range p.mailbox {
		if (src < 0 || m.Src == src) && (tag < 0 || m.Tag == tag) {
			return true
		}
	}
	return false
}

// Barrier synchronizes the calling process with parties-1 other processes
// calling Barrier with the same key.  All members resume at
// max(arrival times)+syncCost; the wait until the last arrival is
// classified as SegIdle (load imbalance) and the synchronization operation
// itself as SegSync, mirroring the accounting barriers the paper added to
// the Sciddle middleware (Section 3.3).
func (p *Proc) Barrier(key string, parties int) {
	if parties <= 0 {
		panic("vm: barrier with no parties")
	}
	if p.k.faults != nil {
		if s := p.k.faults.BarrierFault(p.id); s > 0 {
			// Straggler: this member reaches the barrier late; the others
			// see the delay as load imbalance (idle), the straggler itself
			// carries it as recovery time.
			p.Elapse(s, SegRecovery)
		}
	}
	b := p.k.barriers[key]
	if b == nil {
		b = p.k.newBarrier(key, parties)
		p.k.barriers[key] = b
	}
	if b.parties != parties {
		panic(fmt.Sprintf("vm: barrier %q party count mismatch: %d vs %d", key, b.parties, parties))
	}
	b.members = append(b.members, p)
	b.arrivals = append(b.arrivals, p.now)
	if len(b.members) < parties {
		p.state = stateBarrier
		p.barrier = b
		p.yield()
		p.barrier = nil
		return
	}
	// Last arriver: release everybody.
	release := b.arrivals[0]
	for _, t := range b.arrivals {
		if t > release {
			release = t
		}
	}
	sync := 0.0
	if p.k.comm != nil {
		sync = p.k.comm.SyncCost(parties)
	}
	for i, q := range b.members {
		q.segment(SegIdle, b.arrivals[i], release)
		q.segment(SegSync, release, release+sync)
		q.now = release + sync
		if q != p {
			q.state = stateReady
			p.k.heapPush(q, q.now)
		}
	}
	delete(p.k.barriers, key)
	p.k.freeBarrier(b)
}

// Spawn creates a new process starting at the caller's current virtual
// time.  It may only be called while the kernel is running.  The returned
// id is valid immediately (e.g. as a Send destination).
func (p *Proc) Spawn(name string, compute ComputeModel, fn func(*Proc)) int {
	q := p.k.addProc(name, compute, fn)
	q.now = p.now
	p.k.startProc(q)
	p.k.heapPush(q, q.now)
	return q.id
}

// yield hands the execution token back to the kernel and blocks until the
// kernel resumes this process.
func (p *Proc) yield() {
	p.k.yield <- p
	<-p.resume
}

type barrier struct {
	key      string
	parties  int
	members  []*Proc
	arrivals []Time
}

// Kernel owns the processes of one simulation.
type Kernel struct {
	comm     CommModel
	tracer   Tracer
	faults   FaultModel
	procs    []*Proc
	yield    chan *Proc
	seq      uint64
	barriers map[string]*barrier
	running  bool
	// ready is an indexed min-heap over runnable processes keyed by
	// (scheduling time, id); nDone counts finished processes so the run
	// loop never rescans k.procs.
	ready []*Proc
	nDone int
	// chanFree is the virtual time at which the shared communication
	// channel becomes free (star-topology contention model).
	chanFree Time
	// msgFree recycles delivered Messages so a steady-state send/recv
	// exchange allocates nothing.  Exactly one process holds the execution
	// token at a time, so the freelist needs no synchronization.
	msgFree []*Message
	// barFree recycles completed barrier records the same way.
	barFree []*barrier
}

// NewKernel creates a kernel with the given communication cost model
// (which may be nil for free communication) and optional tracer.
func NewKernel(comm CommModel, tracer Tracer) *Kernel {
	return &Kernel{
		comm:     comm,
		tracer:   tracer,
		yield:    make(chan *Proc),
		barriers: make(map[string]*barrier),
	}
}

// SetFaults installs a fault model (nil disables injection).  It must be
// called before Run; a nil model leaves every timeline bit-identical to an
// injector-free kernel.
func (k *Kernel) SetFaults(fm FaultModel) {
	if k.running {
		panic("vm: SetFaults called while kernel is running")
	}
	k.faults = fm
}

// NewProc registers a process before the simulation starts.  The process
// begins at virtual time zero.
func (k *Kernel) NewProc(name string, compute ComputeModel, fn func(*Proc)) *Proc {
	if k.running {
		panic("vm: NewProc called while kernel is running; use Proc.Spawn")
	}
	return k.addProc(name, compute, fn)
}

func (k *Kernel) addProc(name string, compute ComputeModel, fn func(*Proc)) *Proc {
	p := &Proc{
		k:       k,
		id:      len(k.procs),
		name:    name,
		compute: compute,
		state:   stateReady,
		resume:  make(chan struct{}),
		fn:      fn,
		heapIdx: -1,
	}
	k.procs = append(k.procs, p)
	return p
}

// startProc launches the goroutine backing p, parked until first resumed.
func (k *Kernel) startProc(p *Proc) {
	go func() {
		<-p.resume
		p.fn(p)
		p.state = stateDone
		k.yield <- p
	}()
}

func (k *Kernel) proc(id int) *Proc {
	if id < 0 || id >= len(k.procs) {
		return nil
	}
	return k.procs[id]
}

func (k *Kernel) nextSeq() uint64 {
	k.seq++
	return k.seq
}

func (k *Kernel) newMessage() *Message {
	if n := len(k.msgFree); n > 0 {
		m := k.msgFree[n-1]
		k.msgFree = k.msgFree[:n-1]
		return m
	}
	return &Message{}
}

// Recycle returns a delivered message to the kernel's freelist so a later
// Send can reuse it.  The receiver may only call it — from its own
// goroutine, while holding the execution token — after it has extracted
// everything it needs from the message, and must not touch m afterwards.
func (k *Kernel) Recycle(m *Message) {
	if m == nil {
		return
	}
	m.Payload = nil
	k.msgFree = append(k.msgFree, m)
}

func (k *Kernel) newBarrier(key string, parties int) *barrier {
	if n := len(k.barFree); n > 0 {
		b := k.barFree[n-1]
		k.barFree = k.barFree[:n-1]
		b.key, b.parties = key, parties
		return b
	}
	return &barrier{key: key, parties: parties}
}

func (k *Kernel) freeBarrier(b *barrier) {
	b.members = b.members[:0]
	b.arrivals = b.arrivals[:0]
	k.barFree = append(k.barFree, b)
}

// Proc returns the process with the given id, or nil.
func (k *Kernel) Proc(id int) *Proc { return k.proc(id) }

// Procs returns all processes registered so far.
func (k *Kernel) Procs() []*Proc { return k.procs }

// Ready-queue: an indexed binary min-heap over runnable processes.
// Ready processes are keyed by their local time; receive-blocked
// processes enter when a matching message is queued, keyed by
// max(local, earliest matching arrival).  Ties break by process id,
// matching the original linear scan's first-minimum selection, so
// schedules are bit-identical to the O(n)-scan kernel.

func (k *Kernel) heapLess(i, j int) bool {
	a, b := k.ready[i], k.ready[j]
	return a.key < b.key || (a.key == b.key && a.id < b.id)
}

func (k *Kernel) heapSwap(i, j int) {
	k.ready[i], k.ready[j] = k.ready[j], k.ready[i]
	k.ready[i].heapIdx = i
	k.ready[j].heapIdx = j
}

func (k *Kernel) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heapLess(i, parent) {
			return
		}
		k.heapSwap(i, parent)
		i = parent
	}
}

func (k *Kernel) heapDown(i int) {
	n := len(k.ready)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && k.heapLess(r, l) {
			min = r
		}
		if !k.heapLess(min, i) {
			return
		}
		k.heapSwap(i, min)
		i = min
	}
}

func (k *Kernel) heapPush(p *Proc, key Time) {
	if p.heapIdx >= 0 {
		panic(fmt.Sprintf("vm: proc %d already enqueued", p.id))
	}
	p.key = key
	p.heapIdx = len(k.ready)
	k.ready = append(k.ready, p)
	k.heapUp(p.heapIdx)
}

func (k *Kernel) heapPop() *Proc {
	p := k.ready[0]
	last := len(k.ready) - 1
	k.heapSwap(0, last)
	k.ready[last] = nil
	k.ready = k.ready[:last]
	if last > 0 {
		k.heapDown(0)
	}
	p.heapIdx = -1
	return p
}

func (k *Kernel) heapDecrease(p *Proc, key Time) {
	p.key = key
	k.heapUp(p.heapIdx)
}

// soleRunnable reports whether no other process would be scheduled
// before p if p yielded at its current time (strictly: every enqueued
// process has a larger (key, id) than (p.now, p.id)).
func (k *Kernel) soleRunnable(p *Proc) bool {
	return k.soleRunnableAt(p, p.now)
}

func (k *Kernel) soleRunnableAt(p *Proc, key Time) bool {
	if len(k.ready) == 0 {
		return true
	}
	top := k.ready[0]
	return top.key > key || (top.key == key && top.id > p.id)
}

// Quiescent reports whether no process is currently enqueued as
// runnable.  Called by the process holding the execution token, it
// means every other live process is parked — the precondition for the
// level-of-detail macro replay in the layers above.
func (k *Kernel) Quiescent() bool { return len(k.ready) == 0 }

// Comm returns the kernel's communication cost model.
func (k *Kernel) Comm() CommModel { return k.comm }

// Faults returns the installed fault model (nil when disabled).
func (k *Kernel) Faults() FaultModel { return k.faults }

// FaultFree reports whether the kernel is provably free of fault
// injection: either no fault model is installed, or the installed model
// declares itself inert via an optional `FaultFree() bool` method (the
// seeded fault.Plan does when all rates are zero, because its hooks
// then draw nothing from the RNG stream).
func (k *Kernel) FaultFree() bool {
	if k.faults == nil {
		return true
	}
	if ff, ok := k.faults.(interface{ FaultFree() bool }); ok {
		return ff.FaultFree()
	}
	return false
}

// ChanFree returns the virtual time at which the shared communication
// channel becomes free.
func (k *Kernel) ChanFree() Time { return k.chanFree }

// SetChanFree positions the shared-channel horizon.  Reserved for macro
// replay layers that advance transfers analytically; must only be
// called by the process holding the execution token, and never
// backwards past an in-flight transfer.
func (k *Kernel) SetChanFree(t Time) { k.chanFree = t }

// earliestMatch finds the queued matching message with the smallest
// (arrival, seq), removing nothing.
func earliestMatch(p *Proc) (*Message, bool) {
	var best *Message
	for _, m := range p.mailbox {
		if !p.matches(m) {
			continue
		}
		if best == nil || m.Arrival < best.Arrival ||
			(m.Arrival == best.Arrival && m.seq < best.seq) {
			best = m
		}
	}
	return best, best != nil
}

// takeEarliestMatch removes and returns the earliest matching message.
func takeEarliestMatch(p *Proc) *Message {
	best, ok := earliestMatch(p)
	if !ok {
		return nil
	}
	p.removeMessage(best)
	return best
}

// removeMessage drops m from the mailbox.  Delivery order is decided by
// (arrival, seq), never by mailbox position, so the O(1) swap-remove is
// safe.
func (p *Proc) removeMessage(m *Message) {
	for i, q := range p.mailbox {
		if q == m {
			last := len(p.mailbox) - 1
			p.mailbox[i] = p.mailbox[last]
			p.mailbox[last] = nil
			p.mailbox = p.mailbox[:last]
			return
		}
	}
}

// DeadlockError reports a simulation that stopped with live but
// non-runnable processes.
type DeadlockError struct {
	States []string
}

func (e *DeadlockError) Error() string {
	return "vm: deadlock: " + strings.Join(e.States, ", ")
}

// Run executes the simulation until every process has finished.  It
// returns a DeadlockError if live processes remain but none is runnable
// (e.g. a Recv that can never be satisfied or an incomplete barrier).
func (k *Kernel) Run() error {
	if k.running {
		panic("vm: kernel already running")
	}
	k.running = true
	defer func() { k.running = false }()
	for _, p := range k.procs {
		k.startProc(p)
		k.heapPush(p, p.now)
	}
	// Note: k.procs may grow while a process runs (Spawn); the loop
	// bound re-evaluates because the kernel only runs while holding the
	// token.
	for k.nDone < len(k.procs) {
		if len(k.ready) == 0 {
			return k.deadlock()
		}
		next := k.heapPop()
		if next.state == stateRecv {
			next.got = takeEarliestMatch(next)
		}
		next.state = stateRunning
		next.resume <- struct{}{}
		k.park(<-k.yield)
	}
	return nil
}

// park re-enqueues a process that just handed the token back, according
// to the state it blocked in.
func (k *Kernel) park(p *Proc) {
	switch p.state {
	case stateRunning:
		// A process that yields without blocking stays ready.
		p.state = stateReady
		k.heapPush(p, p.now)
	case stateRecv:
		// Enqueue only if a matching message is already waiting; later
		// arrivals enqueue it through noteArrival.
		if best, ok := earliestMatch(p); ok {
			key := p.now
			if best.Arrival > key {
				key = best.Arrival
			}
			k.heapPush(p, key)
		}
	case stateDone:
		k.nDone++
	case stateBarrier:
		// Woken by the last arriver, which re-enqueues all members.
	}
}

func (k *Kernel) deadlock() error {
	var states []string
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		states = append(states, fmt.Sprintf("%s(%d): %s t=%.6g mailbox=%d",
			p.name, p.id, p.state, p.now, len(p.mailbox)))
	}
	sort.Strings(states)
	return &DeadlockError{States: states}
}

// MaxTime returns the largest local time over all processes — the virtual
// makespan of the simulation.
func (k *Kernel) MaxTime() Time {
	var t Time
	for _, p := range k.procs {
		if p.now > t {
			t = p.now
		}
	}
	return t
}
