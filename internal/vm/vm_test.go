package vm

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestComputeAdvancesClock(t *testing.T) {
	k := NewKernel(nil, nil)
	var end Time
	k.NewProc("p", ConstRate(100), func(p *Proc) {
		p.Compute(500)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(end, 5.0) {
		t.Fatalf("end = %v, want 5.0", end)
	}
}

func TestComputeZeroAndNegative(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("p", ConstRate(100), func(p *Proc) {
		p.Compute(0)
		p.Compute(-3)
		if p.Now() != 0 {
			t.Errorf("clock moved on zero/negative flops: %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestElapseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Elapse")
		}
	}()
	p := &Proc{k: NewKernel(nil, nil)}
	p.Elapse(-1, SegOther)
}

func TestSendRecvTiming(t *testing.T) {
	cm := FixedCost{Overhead: 0.1, ByteRate: 1000, Latency: 0.05}
	k := NewKernel(cm, nil)
	var recvAt, senderEnd Time
	a := k.NewProc("a", nil, func(p *Proc) {
		p.Send(1, 7, "hi", 100) // busy = 0.1 + 100/1000 = 0.2
		senderEnd = p.Now()
	})
	k.NewProc("b", nil, func(p *Proc) {
		m := p.Recv(MatchSrcTag(a.ID(), 7))
		if m.Payload.(string) != "hi" {
			t.Errorf("payload = %v", m.Payload)
		}
		recvAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(senderEnd, 0.2) {
		t.Errorf("sender end = %v, want 0.2", senderEnd)
	}
	// arrival = 0.2 + latency 0.05
	if !almostEq(recvAt, 0.25) {
		t.Errorf("recv at = %v, want 0.25", recvAt)
	}
}

func TestRecvIdleAccounting(t *testing.T) {
	cm := FixedCost{Overhead: 1}
	k := NewKernel(cm, nil)
	var idle float64
	k.NewProc("sender", ConstRate(1), func(p *Proc) {
		p.Compute(10) // busy until t=10
		p.Send(1, 0, nil, 0)
	})
	k.NewProc("recv", nil, func(p *Proc) {
		p.Recv(nil)
		idle = p.Stats().Seg[SegIdle]
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Receiver waits from t=0 to arrival t=11.
	if !almostEq(idle, 11) {
		t.Errorf("idle = %v, want 11", idle)
	}
}

// TestEarliestMessageWins checks that a receive delivers the globally
// earliest matching message even when a slower process enqueues first.
func TestEarliestMessageWins(t *testing.T) {
	k := NewKernel(FixedCost{Overhead: 0.01}, nil)
	var first string
	k.NewProc("late", ConstRate(1), func(p *Proc) {
		p.Compute(100) // sends at t=100
		p.Send(2, 0, "late", 0)
	})
	k.NewProc("early", ConstRate(1), func(p *Proc) {
		p.Compute(1) // sends at t=1
		p.Send(2, 0, "early", 0)
	})
	k.NewProc("recv", nil, func(p *Proc) {
		m := p.Recv(nil)
		first = m.Payload.(string)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if first != "early" {
		t.Errorf("first message = %q, want early", first)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	// Two messages arriving at the identical time are delivered in send
	// order, deterministically.
	k := NewKernel(nil, nil) // zero-cost comm: both arrive at t=0
	var order []string
	k.NewProc("s", nil, func(p *Proc) {
		p.Send(1, 0, "first", 0)
		p.Send(1, 0, "second", 0)
	})
	k.NewProc("r", nil, func(p *Proc) {
		order = append(order, p.Recv(nil).Payload.(string))
		order = append(order, p.Recv(nil).Payload.(string))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
}

func TestMatchSrcTagWildcards(t *testing.T) {
	m := &Message{Src: 3, Tag: 9}
	cases := []struct {
		src, tag int
		want     bool
	}{
		{3, 9, true}, {-1, 9, true}, {3, -1, true}, {-1, -1, true},
		{2, 9, false}, {3, 8, false},
	}
	for _, c := range cases {
		if got := MatchSrcTag(c.src, c.tag)(m); got != c.want {
			t.Errorf("MatchSrcTag(%d,%d) = %v, want %v", c.src, c.tag, got, c.want)
		}
	}
}

func TestBarrierReleaseAndAccounting(t *testing.T) {
	cm := FixedCost{SyncDelay: 0.5}
	k := NewKernel(cm, nil)
	ends := make([]Time, 3)
	idles := make([]float64, 3)
	syncs := make([]float64, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.NewProc(fmt.Sprintf("p%d", i), ConstRate(1), func(p *Proc) {
			p.Compute(float64(i+1) * 10) // arrive at 10, 20, 30
			p.Barrier("b", 3)
			ends[i] = p.Now()
			idles[i] = p.Stats().Seg[SegIdle]
			syncs[i] = p.Stats().Seg[SegSync]
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range ends {
		if !almostEq(e, 30.5) {
			t.Errorf("proc %d released at %v, want 30.5", i, e)
		}
		if !almostEq(syncs[i], 0.5) {
			t.Errorf("proc %d sync = %v, want 0.5", i, syncs[i])
		}
	}
	if !almostEq(idles[0], 20) || !almostEq(idles[1], 10) || !almostEq(idles[2], 0) {
		t.Errorf("idles = %v, want [20 10 0]", idles)
	}
}

func TestBarrierReusableKey(t *testing.T) {
	k := NewKernel(nil, nil)
	for i := 0; i < 2; i++ {
		k.NewProc(fmt.Sprintf("p%d", i), ConstRate(1), func(p *Proc) {
			for it := 0; it < 5; it++ {
				p.Compute(1)
				p.Barrier("loop", 2)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierPartyMismatchPanics(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("a", nil, func(p *Proc) { p.Barrier("x", 2) })
	k.NewProc("b", nil, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on party mismatch")
			}
			// Complete the barrier properly so Run terminates.
			p.Barrier("x", 2)
		}()
		p.Barrier("x", 3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("waiter", nil, func(p *Proc) {
		p.Recv(nil) // nobody ever sends
	})
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.States) != 1 {
		t.Errorf("states = %v", de.States)
	}
}

func TestDeadlockIncompleteBarrier(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("a", nil, func(p *Proc) { p.Barrier("never", 2) })
	k.NewProc("b", nil, func(p *Proc) {})
	if _, ok := k.Run().(*DeadlockError); !ok {
		t.Fatal("expected deadlock from incomplete barrier")
	}
}

func TestSpawnDuringRun(t *testing.T) {
	k := NewKernel(FixedCost{Overhead: 0.5}, nil)
	var childTime Time
	k.NewProc("parent", ConstRate(1), func(p *Proc) {
		p.Compute(3)
		id := p.Spawn("child", ConstRate(1), func(q *Proc) {
			if q.Now() != 3 {
				t.Errorf("child starts at %v, want 3", q.Now())
			}
			q.Compute(2)
			childTime = q.Now()
			q.Send(p.ID(), 1, nil, 0)
		})
		m := p.Recv(MatchSrcTag(id, 1))
		_ = m
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(childTime, 5) {
		t.Errorf("child time = %v, want 5", childTime)
	}
}

func TestSendToUnknownProcPanics(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("p", nil, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic sending to unknown proc")
			}
		}()
		p.Send(42, 0, nil, 0)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("s", nil, func(p *Proc) { p.Send(1, 5, nil, 0) })
	k.NewProc("r", nil, func(p *Proc) {
		// Force the sender to run first by receiving its message.
		if p.Probe(MatchSrcTag(-1, 6)) {
			t.Error("probe matched wrong tag")
		}
		m := p.Recv(MatchSrcTag(-1, 5))
		if m.Tag != 5 {
			t.Errorf("tag = %d", m.Tag)
		}
		if p.Probe(nil) {
			t.Error("probe matched on empty mailbox")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	k := NewKernel(FixedCost{Overhead: 0.1, ByteRate: 100}, nil)
	var sent, recvd Stats
	k.NewProc("s", ConstRate(10), func(p *Proc) {
		p.Compute(5)
		p.Send(1, 0, nil, 50)
		p.Send(1, 0, nil, 30)
		sent = p.Stats()
	})
	k.NewProc("r", nil, func(p *Proc) {
		p.Recv(nil)
		p.Recv(nil)
		recvd = p.Stats()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sent.MsgsSent != 2 || sent.BytesSent != 80 {
		t.Errorf("sent stats = %+v", sent)
	}
	if recvd.MsgsRecv != 2 || recvd.BytesRecv != 80 {
		t.Errorf("recv stats = %+v", recvd)
	}
	if sent.Flops != 5 {
		t.Errorf("flops = %v", sent.Flops)
	}
	if !almostEq(sent.Seg[SegCompute], 0.5) {
		t.Errorf("compute seg = %v", sent.Seg[SegCompute])
	}
	// Each send: 0.1 + bytes/100.
	if !almostEq(sent.Seg[SegComm], 0.1+0.5+0.1+0.3) {
		t.Errorf("comm seg = %v", sent.Seg[SegComm])
	}
	if !almostEq(sent.Busy(), sent.Seg[SegCompute]+sent.Seg[SegComm]) {
		t.Errorf("busy = %v", sent.Busy())
	}
}

type segRec struct {
	proc  int
	kind  SegKind
	start Time
	end   Time
}

type recTracer struct{ segs []segRec }

func (r *recTracer) Segment(proc int, name string, kind SegKind, start, end Time) {
	r.segs = append(r.segs, segRec{proc, kind, start, end})
}

func TestTracerReceivesSegments(t *testing.T) {
	tr := &recTracer{}
	k := NewKernel(FixedCost{Overhead: 0.2}, tr)
	k.NewProc("a", ConstRate(1), func(p *Proc) {
		p.Compute(1)
		p.Send(1, 0, nil, 0)
	})
	k.NewProc("b", nil, func(p *Proc) { p.Recv(nil) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var kinds []SegKind
	for _, s := range tr.segs {
		kinds = append(kinds, s.kind)
		if s.end <= s.start {
			t.Errorf("empty segment recorded: %+v", s)
		}
	}
	want := []SegKind{SegCompute, SegComm, SegIdle}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("kind[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
}

// TestDeterminism runs an irregular workload twice and demands identical
// final clocks — the kernel's core guarantee.
func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel(FixedCost{Overhead: 0.001, ByteRate: 1e6, SyncDelay: 0.01}, nil)
		const n = 5
		for i := 0; i < n; i++ {
			i := i
			k.NewProc(fmt.Sprintf("w%d", i), ConstRate(1e3), func(p *Proc) {
				for it := 0; it < 10; it++ {
					p.Compute(float64((i*7+it*13)%50 + 1))
					p.Send((i+1)%n, it, nil, (i*31+it)%1000)
					p.Recv(MatchSrcTag(-1, it))
					p.Barrier(fmt.Sprintf("it%d", it), n)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		var times []Time
		for _, p := range k.Procs() {
			times = append(times, p.Now())
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: run1[%d]=%v run2[%d]=%v", i, a[i], i, b[i])
		}
	}
}

// Property: for any sequence of compute charges the final clock equals the
// sum of the individual durations (no time is lost or double counted).
func TestComputeAdditivityProperty(t *testing.T) {
	f := func(durations []uint16) bool {
		k := NewKernel(nil, nil)
		var got Time
		k.NewProc("p", ConstRate(1000), func(p *Proc) {
			for _, d := range durations {
				p.Compute(float64(d))
			}
			got = p.Now()
		})
		if err := k.Run(); err != nil {
			return false
		}
		var want float64
		for _, d := range durations {
			want += float64(d) / 1000
		}
		return almostEq(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: messages between a single sender and receiver are delivered in
// send order whenever costs are uniform (FIFO per link).
func TestFIFODeliveryProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		k := NewKernel(FixedCost{Overhead: 0.01, ByteRate: 100}, nil)
		n := len(sizes)
		k.NewProc("s", nil, func(p *Proc) {
			for i, sz := range sizes {
				p.Send(1, 0, i, int(sz))
			}
		})
		ok := true
		k.NewProc("r", nil, func(p *Proc) {
			for i := 0; i < n; i++ {
				m := p.Recv(nil)
				if m.Payload.(int) != i {
					ok = false
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSegKindString(t *testing.T) {
	if SegCompute.String() != "compute" || SegIdle.String() != "idle" {
		t.Error("SegKind strings wrong")
	}
	if SegKind(99).String() != "SegKind(99)" {
		t.Error("out-of-range SegKind string wrong")
	}
}

func TestWorkingSetAffectsRate(t *testing.T) {
	// A compute model that halves the rate beyond 1000 bytes.
	cm := computeFn(func(flops float64, ws int) float64 {
		r := 100.0
		if ws > 1000 {
			r = 50
		}
		return flops / r
	})
	k := NewKernel(nil, nil)
	k.NewProc("p", cm, func(p *Proc) {
		p.Compute(100) // 1s
		p.SetWorkingSet(2000)
		if p.WorkingSet() != 2000 {
			t.Error("working set not stored")
		}
		p.Compute(100) // 2s
		if !almostEq(p.Now(), 3) {
			t.Errorf("now = %v, want 3", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

type computeFn func(float64, int) float64

func (f computeFn) Seconds(flops float64, ws int) float64 { return f(flops, ws) }

func TestMaxTime(t *testing.T) {
	k := NewKernel(nil, nil)
	k.NewProc("a", ConstRate(1), func(p *Proc) { p.Compute(5) })
	k.NewProc("b", ConstRate(1), func(p *Proc) { p.Compute(9) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEq(k.MaxTime(), 9) {
		t.Errorf("MaxTime = %v", k.MaxTime())
	}
}

// Property: classified time never exceeds a process's clock, times are
// monotone, and segments never overlap within one process.
func TestAccountingCompletenessProperty(t *testing.T) {
	tr := &recTracer{}
	k := NewKernel(FixedCost{Overhead: 0.01, ByteRate: 1e5, SyncDelay: 0.02}, tr)
	const n = 4
	for i := 0; i < n; i++ {
		i := i
		k.NewProc(fmt.Sprintf("p%d", i), ConstRate(1e3), func(p *Proc) {
			for it := 0; it < 6; it++ {
				p.Compute(float64((i*13+it*7)%40 + 1))
				p.Send((i+1)%n, it, nil, (i*97+it*31)%500)
				p.Recv(MatchSrcTag(-1, it))
				p.Barrier(fmt.Sprintf("b%d", it), n)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range k.Procs() {
		st := p.Stats()
		if st.Busy() > p.Now()+1e-9 {
			t.Errorf("proc %d: busy %v exceeds clock %v", p.ID(), st.Busy(), p.Now())
		}
	}
	// Per-process segments are disjoint and ordered.
	byProc := map[int][]segRec{}
	for _, s := range tr.segs {
		byProc[s.proc] = append(byProc[s.proc], s)
	}
	for id, segs := range byProc {
		for i := 1; i < len(segs); i++ {
			if segs[i].start < segs[i-1].end-1e-12 {
				t.Fatalf("proc %d: segment %d overlaps previous (%v < %v)",
					id, i, segs[i].start, segs[i-1].end)
			}
		}
	}
}
