package opalperf

import (
	"reflect"
	"testing"

	"opalperf/internal/harness"
	"opalperf/internal/md"
	"opalperf/internal/molecule"
	"opalperf/internal/platform"
	"opalperf/internal/pvm"
	"opalperf/internal/telemetry"
)

// armMatrix arms a fresh comm-matrix epoch for one test and restores
// the disarmed empty state afterwards.
func armMatrix(t *testing.T) {
	t.Helper()
	telemetry.EnableMatrix(true)
	telemetry.ResetMatrix()
	t.Cleanup(func() {
		telemetry.EnableMatrix(false)
		telemetry.ResetMatrix()
	})
}

// TestCommMatrixReconcilesWithCounters pins the matrix instrument's
// accounting contract: every message the pvm layer counts lands in
// exactly one matrix cell, so the matrix totals equal the aggregate
// opal_pvm_* counter deltas — not approximately, exactly.
func TestCommMatrixReconcilesWithCounters(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	armMatrix(t)

	msgsBefore := telemetry.PvmMsgsSent.Value()
	bytesBefore := telemetry.PvmBytesSent.Value()
	if _, err := harness.Run(supervisedSpec(func(cp *md.Checkpoint) error { return nil })); err != nil {
		t.Fatal(err)
	}
	wantMsgs := uint64(telemetry.PvmMsgsSent.Value() - msgsBefore)
	wantBytes := uint64(telemetry.PvmBytesSent.Value() - bytesBefore)
	gotMsgs, gotBytes := telemetry.MatrixTotals()
	if gotMsgs != wantMsgs || gotBytes != wantBytes {
		t.Fatalf("matrix totals = %d msgs / %d bytes, counters moved %d msgs / %d bytes",
			gotMsgs, gotBytes, wantMsgs, wantBytes)
	}
	if wantMsgs == 0 {
		t.Fatal("run moved no messages; reconciliation is vacuous")
	}
}

// matrixOfRun runs one fault-free parallel simulation under the given
// LoD mode with the matrix armed and returns its snapshot plus the
// number of phases the run replayed as macro-events.
func matrixOfRun(t *testing.T, lod md.LoDMode) (telemetry.MatrixData, int) {
	t.Helper()
	telemetry.ResetMatrix()
	sys := molecule.TestComplex(2, 4, 9)
	opts := md.Options{
		Cutoff:          10,
		UpdateEvery:     1,
		Accounting:      true,
		InitTemperature: 300,
		Seed:            7,
		LoD:             lod,
	}
	s := pvm.NewSimVM(platform.J90(), nil)
	var res *md.Result
	var runErr error
	s.SpawnRoot("opal-client", func(task pvm.Task) {
		res, runErr = md.RunParallel(task, sys, opts, 4, 6)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return telemetry.MatrixSnapshot(), res.LoDMacroPhases
}

// TestCommMatrixIdenticalUnderLoD requires the macro-replay fabric to
// book the same matrix cells as the fine-grained DES: message counts,
// byte counts, call counts and the float latency sums must all be
// bit-identical, so -lod never changes what the console shows.
func TestCommMatrixIdenticalUnderLoD(t *testing.T) {
	armMatrix(t)
	t.Setenv("OPAL_LOD", "auto") // exercised via LoDDefault below
	fine, finePhases := matrixOfRun(t, md.LoDOff)
	macro, macroPhases := matrixOfRun(t, md.LoDDefault)
	if len(fine.Links) == 0 {
		t.Fatal("fine-grained run produced no matrix links")
	}
	if finePhases != 0 {
		t.Fatalf("lod=off run replayed %d macro phases", finePhases)
	}
	if macroPhases == 0 {
		t.Fatal("OPAL_LOD=auto run replayed no macro phases; identity is vacuous")
	}
	if !reflect.DeepEqual(fine, macro) {
		t.Fatalf("matrix differs under OPAL_LOD=auto:\nfine:  %+v\nmacro: %+v", fine, macro)
	}
	on, onPhases := matrixOfRun(t, md.LoDOn)
	if onPhases == 0 {
		t.Fatal("lod=on run replayed no macro phases")
	}
	if !reflect.DeepEqual(fine, on) {
		t.Fatalf("matrix differs under lod=on:\nfine:  %+v\non:    %+v", fine, on)
	}
}

// TestCommMatrixHealInheritance kills one server mid-run on a
// self-healing fleet and requires the replacement task to inherit the
// dead rank's row and column: the grid stays client + N servers wide,
// with no ghost rank for the respawned TID.
func TestCommMatrixHealInheritance(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	armMatrix(t)

	spec := supervisedSpec(func(cp *md.Checkpoint) error { return nil })
	if _, err := harness.Run(spec); err != nil {
		t.Fatal(err)
	}
	snap := telemetry.MatrixSnapshot()
	wantRanks := spec.Servers + 1 // client is rank 0
	if snap.Ranks != wantRanks {
		t.Fatalf("ranks = %d, want %d (replacement server must inherit the dead rank)",
			snap.Ranks, wantRanks)
	}
	for _, l := range snap.Links {
		if l.Src >= wantRanks || l.Dst >= wantRanks {
			t.Fatalf("link %d→%d outside the %d-rank grid: %+v", l.Src, l.Dst, wantRanks, snap.Links)
		}
	}
	// The killed server's rank keeps traffic flowing after the heal:
	// the client↔rank-2 links (server index 1 died at step 3) exist.
	var toKilled, fromKilled bool
	for _, l := range snap.Links {
		if l.Src == 0 && l.Dst == 2 {
			toKilled = true
		}
		if l.Src == 2 && l.Dst == 0 {
			fromKilled = true
		}
	}
	if !toKilled || !fromKilled {
		t.Fatalf("no traffic on the healed rank's links: %+v", snap.Links)
	}
}
