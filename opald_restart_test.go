package opalperf

// opald restart acceptance: boot the daemon with a persistent archive,
// run a job to completion, SIGTERM, reboot on the same archive directory,
// and submit the identical spec again.  The second life must serve the
// duplicate from the persisted result store — coalesced, bit-identical
// energies, completions still 1 — without re-executing anything.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

type opaldProc struct {
	cmd  *exec.Cmd
	base string
	tail chan string
}

// startOpald boots one opald and waits for its readiness line.
func startOpald(t *testing.T, bin string, args ...string) *opaldProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "on http://"); i >= 0 {
			base = "http://" + strings.TrimSpace(line[i+len("on http://"):])
			break
		}
	}
	if base == "" {
		t.Fatalf("opald never announced its address: %v", sc.Err())
	}
	tail := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		tail <- strings.Join(lines, "\n")
	}()
	return &opaldProc{cmd: cmd, base: base, tail: tail}
}

// stopOpald SIGTERMs the daemon and requires a clean drain.  Stdout is
// read to EOF before reaping: Wait closes the pipe, and a concurrent
// Wait can race the tail reader out of the final drain lines.
func stopOpald(t *testing.T, p *opaldProc) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var out string
	select {
	case out = <-p.tail:
	case <-time.After(30 * time.Second):
		t.Fatal("opald did not close stdout within 30s of SIGTERM")
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("opald exited non-zero after SIGTERM: %v\n%s", err, out)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("opald did not exit within 30s of SIGTERM")
	}
}

type runDoc struct {
	JobID       string `json:"job_id"`
	Coalesced   bool   `json:"coalesced"`
	State       string `json:"state"`
	Completions int    `json:"completions"`
	Result      *struct {
		Energies []float64 `json:"energies"`
	} `json:"result"`
}

func submitRun(t *testing.T, client *http.Client, base, tenant, spec string) runDoc {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/runs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc runDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || doc.JobID == "" {
		t.Fatalf("submit: status %d doc %+v", resp.StatusCode, doc)
	}
	return doc
}

func pollDone(t *testing.T, client *http.Client, base, jobID string) runDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/runs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var doc runDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if doc.State == "done" {
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", jobID, doc.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestOpaldRestartServesArchivedResult(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildCommands(t)
	archiveDir := filepath.Join(t.TempDir(), "warehouse")
	bin := filepath.Join(dir, "opald")
	const spec = `{"size":"small","scale":0.02,"servers":2,"steps":6,"update_every":2}`
	client := &http.Client{Timeout: 10 * time.Second}

	// First life: run the spec to completion, then drain.
	p1 := startOpald(t, bin, "-addr", "localhost:0", "-workers", "2", "-archive", archiveDir)
	acc := submitRun(t, client, p1.base, "alice", spec)
	if acc.Coalesced {
		t.Fatalf("first submission unexpectedly coalesced: %+v", acc)
	}
	first := pollDone(t, client, p1.base, acc.JobID)
	if first.Result == nil || len(first.Result.Energies) != 6 {
		t.Fatalf("first life done without full result: %+v", first)
	}
	if first.Completions != 1 {
		t.Fatalf("first life completions = %d", first.Completions)
	}
	stopOpald(t, p1)

	// The warehouse must hold segments now.
	segs, err := filepath.Glob(filepath.Join(archiveDir, "seg-*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no archive segments in %s (err %v)", archiveDir, err)
	}

	// Second life: same archive directory, duplicate submission from a
	// different tenant.  Served from the persisted store: coalesced
	// immediately, state done, energies bit-identical, completions 1.
	p2 := startOpald(t, bin, "-addr", "localhost:0", "-workers", "2", "-archive", archiveDir)
	dup := submitRun(t, client, p2.base, "bob", spec)
	if !dup.Coalesced {
		t.Fatalf("duplicate after restart did not coalesce: %+v", dup)
	}
	if dup.State != "done" {
		t.Fatalf("duplicate state %q at submission — should be served terminal, not re-executed", dup.State)
	}
	served := pollDone(t, client, p2.base, dup.JobID)
	if served.Completions != 1 {
		t.Fatalf("completions = %d across restart, want 1 (re-execution?)", served.Completions)
	}
	if served.Result == nil || len(served.Result.Energies) != len(first.Result.Energies) {
		t.Fatalf("restored result shape: %+v", served)
	}
	for i := range first.Result.Energies {
		if served.Result.Energies[i] != first.Result.Energies[i] {
			t.Fatalf("energy[%d] differs across restart: %v != %v",
				i, served.Result.Energies[i], first.Result.Energies[i])
		}
	}

	// No execution happened in the second life: its metrics show zero
	// jobs done this process, one coalesced submission.
	resp, err := client.Get(p2.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readBody(t, resp)
	for _, want := range []string{
		"opal_ctl_jobs_done_total 0",
		"opal_ctl_jobs_coalesced_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("second-life /metrics missing %q", want)
		}
	}
	stopOpald(t, p2)

	// Third check, offline: opalquery over the same warehouse sees the
	// first life's run summary.
	out, err := exec.Command(filepath.Join(dir, "opalquery"), "-archive", archiveDir, "list").CombinedOutput()
	if err != nil {
		t.Fatalf("opalquery list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "job-000001") {
		t.Errorf("opalquery list does not show the archived run:\n%s", out)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
