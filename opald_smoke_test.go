package opalperf

// opald end-to-end smoke: boot the daemon, drive one run and a thousand
// predictions through the real HTTP surface, then SIGTERM it and check
// the graceful-drain contract — exit 0 and a flushed, parseable journal.
// `make opald-smoke` runs exactly this test.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestOpaldSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildCommands(t)
	journal := filepath.Join(t.TempDir(), "opald.jsonl")

	cmd := exec.Command(filepath.Join(dir, "opald"),
		"-addr", "localhost:0", "-workers", "2", "-journal", journal,
		"-predict-rate", "1e6", "-predict-burst", "1e6")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The readiness line carries the bound address (port 0 picks one).
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "on http://"); i >= 0 {
			base = "http://" + strings.TrimSpace(line[i+len("on http://"):])
			break
		}
	}
	if base == "" {
		t.Fatalf("opald never announced its address: %v", sc.Err())
	}
	// Keep draining stdout so the daemon never blocks on a full pipe.
	tail := make(chan string, 1)
	go func() {
		var lines []string
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		tail <- strings.Join(lines, "\n")
	}()

	client := &http.Client{Timeout: 10 * time.Second}

	// Submit one real run and poll it to completion.
	resp, err := client.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"size":"small","scale":0.02,"servers":2,"steps":6,"update_every":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.JobID == "" {
		t.Fatalf("submit: status %d job %q", resp.StatusCode, acc.JobID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(base + "/v1/runs/" + acc.JobID)
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			State  string `json:"state"`
			Result *struct {
				Energies []float64 `json:"energies"`
			} `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.State == "done" {
			if view.Result == nil || len(view.Result.Energies) != 6 {
				t.Fatalf("done without full result: %+v", view)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", acc.JobID, view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hammer the hot read path: 1k predictions must all answer 200.
	predictURL := base + "/v1/predict?platform=j90&size=small&servers=8&steps=100"
	for i := 0; i < 1000; i++ {
		resp, err := client.Get(predictURL)
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, resp.StatusCode)
		}
	}

	// Graceful drain: SIGTERM must exit 0 with the journal flushed.
	// Read stdout to EOF before reaping: Wait closes the pipe, and a
	// concurrent Wait can race the tail reader out of the final lines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var out string
	select {
	case out = <-tail:
	case <-time.After(30 * time.Second):
		t.Fatal("opald did not close stdout within 30s of SIGTERM")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("opald exited non-zero after SIGTERM: %v\n%s", err, out)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("opald did not exit within 30s of SIGTERM")
	}
	if !strings.Contains(out, "drained, exiting") {
		t.Fatalf("missing drain confirmation in output:\n%s", out)
	}

	// The journal must be flushed JSONL carrying the service lifecycle.
	events := readJournalEvents(t, journal)
	for _, want := range []string{"service_start", "ctl_job_accepted", "ctl_job_done", "drain_start", "drain_done"} {
		if !events[want] {
			t.Errorf("journal lacks %q event (have %v)", want, keysOf(events))
		}
	}
}

func readJournalEvents(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	events := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var doc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("journal line %d is not JSON: %v\n%s", i+1, err, line)
		}
		events[doc.Type] = true
	}
	return events
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
