package opalperf

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"opalperf/internal/core"
	"opalperf/internal/fault"
	"opalperf/internal/harness"
	"opalperf/internal/md"
	"opalperf/internal/molecule"
	"opalperf/internal/oracle"
	"opalperf/internal/platform"
	"opalperf/internal/telemetry"
)

// calibrateFor fits a J90 machine from a handful of accounting runs on
// sys, the way cmd/calibrate does but scoped to the factors the oracle
// test exercises.  The case list varies servers, update frequency and
// cut-off so every NNLS component has rank, and includes the oracle run's
// own configuration (3 servers, 10 A, update every 2).
func calibrateFor(t *testing.T, sys *molecule.System) core.Machine {
	t.Helper()
	cases := []struct {
		servers, update int
		cutoff          float64
	}{
		{3, 2, harness.EffectiveCutoff},
		{2, 1, harness.EffectiveCutoff},
		{5, 2, harness.NoCutoff},
		{4, 1, harness.NoCutoff},
	}
	var ms []core.Measurement
	for _, c := range cases {
		spec := harness.RunSpec{
			Platform: platform.J90(),
			Sys:      sys,
			Opts: md.Options{
				Cutoff:      c.cutoff,
				UpdateEvery: c.update,
				Accounting:  true,
				Minimize:    true,
			},
			Servers: c.servers,
			Steps:   8,
		}
		out, err := harness.Run(spec)
		if err != nil {
			t.Fatalf("calibration run (p=%d): %v", c.servers, err)
		}
		ms = append(ms, harness.MeasurementOf(spec, out))
	}
	rep, err := core.Calibrate("j90-fit", ms)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	return rep.Machine
}

// journalEvents decodes the JSONL journal into generic maps per type.
func journalEvents(t *testing.T, buf *bytes.Buffer) map[string][]map[string]any {
	t.Helper()
	out := map[string][]map[string]any{}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		typ, _ := m["type"].(string)
		out[typ] = append(out[typ], m)
	}
	return out
}

// TestOracleFaultFreeWithinTolerance is the first acceptance scenario: on
// a fault-free virtual-J90 run checked against a machine calibrated from
// the same engine, every window's residuals stay within the calibration
// tolerance and no anomaly fires.
func TestOracleFaultFreeWithinTolerance(t *testing.T) {
	sys := benchSystem("medium")
	machine := calibrateFor(t, sys)

	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	var journal bytes.Buffer
	telemetry.StartJournal(&journal, 64)
	defer telemetry.StopJournal()

	o := oracle.New(oracle.Config{
		Machine:     machine,
		Sys:         sys,
		Cutoff:      harness.EffectiveCutoff,
		UpdateEvery: 2,
		Servers:     3,
		Window:      2, // a multiple of UpdateEvery: uniform windows
	})
	if _, err := harness.Run(harness.RunSpec{
		Platform: platform.J90(),
		Sys:      sys,
		Opts: md.Options{
			Cutoff:      harness.EffectiveCutoff,
			UpdateEvery: 2,
			Accounting:  true,
			Minimize:    true,
		},
		Servers: 3,
		Steps:   8,
		Oracle:  o,
	}); err != nil {
		t.Fatal(err)
	}

	if got := o.Windows(); got != 4 {
		t.Fatalf("windows = %d, want 4 (8 steps / window 2)", got)
	}
	if got := o.Anomalies(); got != 0 {
		t.Fatalf("fault-free run raised %d anomalies", got)
	}
	last := o.Last()
	if last == nil || last.Partial {
		t.Fatalf("last window = %+v, want a full window", last)
	}
	for _, tr := range last.Terms {
		scale := math.Max(math.Abs(tr.Predicted), math.Abs(tr.Measured))
		if math.Abs(tr.Residual) > 0.25*scale+1e-6 {
			t.Errorf("term %s out of calibration tolerance: predicted %.6g measured %.6g",
				tr.Term, tr.Predicted, tr.Measured)
		}
		t.Logf("term %-4s predicted %.6g measured %.6g residual %+.3g z %+.2f",
			tr.Term, tr.Predicted, tr.Measured, tr.Residual, tr.Z)
	}

	evs := journalEvents(t, &journal)
	if len(evs["oracle_start"]) != 1 || len(evs["oracle_finish"]) != 1 {
		t.Fatalf("oracle lifecycle events missing: %d start, %d finish",
			len(evs["oracle_start"]), len(evs["oracle_finish"]))
	}
	if n := len(evs["oracle_anomaly"]); n != 0 {
		t.Fatalf("journal has %d oracle_anomaly events:\n%s", n, journal.String())
	}
}

// TestOracleFlagsKillServerAnomaly is the second acceptance scenario: an
// administrative kill mid-run makes the oracle attribute the deviation to
// the communication/synchronization side of the model (the measured
// window folds recovery into comm), raise oracle_anomaly and degrade
// /healthz.
func TestOracleFlagsKillServerAnomaly(t *testing.T) {
	sys := benchSystem("small")
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	telemetry.ResetHealth()
	defer telemetry.ResetHealth()
	var journal bytes.Buffer
	telemetry.StartJournal(&journal, 64)
	defer telemetry.StopJournal()

	o := oracle.New(oracle.Config{
		Machine:     core.MachineFor(platform.J90(), sys.Gamma()),
		Sys:         sys,
		Cutoff:      harness.EffectiveCutoff,
		UpdateEvery: 2,
		Servers:     3,
		Window:      2,
		// The kill lands at step 9, inside window 4 (steps 8-10): by then
		// the EWMA has seen 4 clean windows, past its warm-up.
		DegradeHealth: true,
	})
	if _, err := harness.Run(harness.RunSpec{
		Platform: platform.J90(),
		Sys:      sys,
		Opts: md.Options{
			Cutoff:        harness.EffectiveCutoff,
			UpdateEvery:   2,
			Minimize:      true,
			SelfHeal:      true,
			FaultTolerant: true,
			Kills:         fault.KillSchedule{9: {1}}.Func(),
		},
		Servers: 3,
		Steps:   12,
		Oracle:  o,
	}); err != nil {
		t.Fatal(err)
	}

	if got := o.Anomalies(); got < 1 {
		t.Fatalf("kill-server run raised %d anomalies, want >= 1", got)
	}
	evs := journalEvents(t, &journal)
	if len(evs["oracle_anomaly"]) == 0 {
		t.Fatalf("journal has no oracle_anomaly event:\n%s", journal.String())
	}
	// The deviation must be attributed to the comm/sync side of the model,
	// not to computation: the kill costs transfers, barriers and recovery.
	for _, ev := range evs["oracle_anomaly"] {
		term, _ := ev["term"].(string)
		if term != "comm" && term != "sync" {
			t.Errorf("anomaly attributed to %q, want comm or sync: %v", term, ev)
		}
	}
	if state, ok := telemetry.Health(); ok || state != "model_anomaly" {
		t.Errorf("anomaly did not degrade health: state=%q ok=%v", state, ok)
	}
}
