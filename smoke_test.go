package opalperf

// Smoke tests: build every command and example and run it with quick
// arguments, so the CLI surface stays wired end to end.  These exec the
// Go toolchain; skip them with -short.

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAll compiles all commands into a temp dir once per test binary.
// The dir must outlive the first caller (several tests share the cache),
// so it is created with os.MkdirTemp and removed in TestMain, not tied to
// any one test's TempDir.
var builtDir string

func TestMain(m *testing.M) {
	code := m.Run()
	if builtDir != "" {
		os.RemoveAll(builtDir)
	}
	os.Exit(code)
}

func buildCommands(t *testing.T) string {
	t.Helper()
	if builtDir != "" {
		return builtDir
	}
	dir, err := os.MkdirTemp("", "opalperf-cmds-")
	if err != nil {
		t.Fatalf("mktemp: %v", err)
	}
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		os.RemoveAll(dir)
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	builtDir = dir
	return dir
}

func runBuilt(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

// runBuiltErr runs a built command expecting a non-zero exit, and
// returns its combined output for error-message assertions.
func runBuiltErr(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v exited zero, want failure:\n%s", name, args, out)
	}
	return string(out)
}

func TestCommandSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := buildCommands(t)

	t.Run("opal", func(t *testing.T) {
		out := runBuilt(t, dir, "opal",
			"-size", "small", "-scale", "0.1", "-servers", "2", "-steps", "2",
			"-metrics", "-timeline")
		for _, want := range []string{"virtual execution time", "middleware metrics", "[#]=compute"} {
			if !strings.Contains(out, want) {
				t.Errorf("opal output missing %q", want)
			}
		}
	})
	t.Run("opal-serial", func(t *testing.T) {
		out := runBuilt(t, dir, "opal",
			"-size", "small", "-scale", "0.1", "-servers", "0", "-steps", "2", "-v")
		if !strings.Contains(out, "simulation steps") {
			t.Error("serial verbose output missing step table")
		}
	})
	t.Run("opal-checkpoint-cycle", func(t *testing.T) {
		ckpt := filepath.Join(t.TempDir(), "c.ckpt")
		runBuilt(t, dir, "opal", "-size", "small", "-scale", "0.1",
			"-servers", "2", "-steps", "2", "-dynamics", "-checkpoint", ckpt)
		out := runBuilt(t, dir, "opal", "-resume", ckpt,
			"-servers", "2", "-steps", "1", "-dynamics")
		if !strings.Contains(out, "resuming from") {
			t.Error("resume banner missing")
		}
	})
	t.Run("opal-lod", func(t *testing.T) {
		args := []string{"-size", "small", "-scale", "0.1", "-servers", "2",
			"-steps", "3", "-v", "-metrics"}
		off := runBuilt(t, dir, "opal", append([]string{"-lod", "off"}, args...)...)
		on := runBuilt(t, dir, "opal", append([]string{"-lod", "on"}, args...)...)
		if off != on {
			t.Errorf("-lod=on output differs from -lod=off:\n--- off ---\n%s\n--- on ---\n%s", off, on)
		}
		auto := runBuilt(t, dir, "opal", append([]string{"-lod", "auto"}, args...)...)
		if off != auto {
			t.Errorf("-lod=auto output differs from -lod=off")
		}
		cmd := exec.Command(filepath.Join(dir, "opal"), "-lod", "bogus")
		if outB, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("-lod=bogus exited zero:\n%s", outB)
		}
	})
	t.Run("opal-kill-rank-out-of-range", func(t *testing.T) {
		out := runBuiltErr(t, dir, "opal",
			"-size", "small", "-scale", "0.1", "-servers", "2", "-steps", "4",
			"-supervise", "-kill-server", "1:9")
		if !strings.Contains(out, "outside the fleet") {
			t.Errorf("out-of-range kill rank not diagnosed:\n%s", out)
		}
	})
	t.Run("opal-negative-checkpoint-every", func(t *testing.T) {
		out := runBuiltErr(t, dir, "opal",
			"-size", "small", "-scale", "0.1", "-servers", "2", "-steps", "4",
			"-checkpoint-every", "-1")
		if !strings.Contains(out, "must be non-negative") {
			t.Errorf("negative -checkpoint-every not diagnosed:\n%s", out)
		}
	})
	t.Run("opal-http-address-taken", func(t *testing.T) {
		// Occupy a port, then point -http at it: the failure must name
		// the flag and the address, not just echo a bare listen error.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		out := runBuiltErr(t, dir, "opal",
			"-size", "small", "-scale", "0.1", "-servers", "2", "-steps", "2",
			"-http", ln.Addr().String())
		for _, want := range []string{"cannot serve -http", ln.Addr().String()} {
			if !strings.Contains(out, want) {
				t.Errorf("bound -http address not diagnosed (missing %q):\n%s", want, out)
			}
		}
	})
	t.Run("scenario", func(t *testing.T) {
		out := runBuilt(t, dir, "scenario", "validate", "scenarios")
		if !strings.Contains(out, "scenario(s) valid") {
			t.Errorf("scenario validate output missing summary:\n%s", out)
		}
		out = runBuilt(t, dir, "scenario", "run", "-seeds", "2",
			filepath.Join("scenarios", "kill-sweep.yaml"))
		if !strings.Contains(out, "PASS: 1 scenario(s) x 2 seed(s)") {
			t.Errorf("scenario run summary missing:\n%s", out)
		}
		out = runBuiltErr(t, dir, "scenario", "run",
			filepath.Join("internal", "scenario", "testdata", "invalid", "rank-out-of-range.yaml"))
		if !strings.Contains(out, "rank") {
			t.Errorf("invalid scenario not diagnosed:\n%s", out)
		}
	})
	t.Run("opal-oracle", func(t *testing.T) {
		journal := filepath.Join(t.TempDir(), "run.jsonl")
		out := runBuilt(t, dir, "opal",
			"-size", "small", "-scale", "0.1", "-servers", "3", "-steps", "8",
			"-oracle", "-oracle-window", "2", "-modelz",
			"-journal", journal, "-journal-max-bytes", "65536")
		for _, want := range []string{"model oracle:", "0 anomaly(ies)", "oracle: last window", "predicted [s]"} {
			if !strings.Contains(out, want) {
				t.Errorf("opal -oracle output missing %q:\n%s", want, out)
			}
		}
		data, err := os.ReadFile(journal)
		if err != nil {
			t.Fatalf("journal not written: %v", err)
		}
		for _, want := range []string{`"type":"oracle_start"`, `"type":"oracle_finish"`} {
			if !strings.Contains(string(data), want) {
				t.Errorf("journal missing %s", want)
			}
		}
	})
	t.Run("perfdiff", func(t *testing.T) {
		base := filepath.Join("cmd", "perfdiff", "testdata", "base.json")
		bad := filepath.Join("cmd", "perfdiff", "testdata", "regressed.json")
		out := runBuilt(t, dir, "perfdiff", base, base)
		if !strings.Contains(out, "perfdiff: ok") {
			t.Errorf("self-diff not ok:\n%s", out)
		}
		cmd := exec.Command(filepath.Join(dir, "perfdiff"), base, bad)
		outB, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("injected regression exited zero:\n%s", outB)
		}
		if !strings.Contains(string(outB), "REGRESSION") {
			t.Errorf("regression not reported:\n%s", outB)
		}
	})
	t.Run("calibrate", func(t *testing.T) {
		out := runBuilt(t, dir, "calibrate", "-scale", "0.08", "-steps", "3")
		for _, want := range []string{"fitted model parameters", "MAPE", "a1"} {
			if !strings.Contains(out, want) {
				t.Errorf("calibrate output missing %q", want)
			}
		}
	})
	t.Run("predict", func(t *testing.T) {
		out := runBuilt(t, dir, "predict", "-size", "medium", "-cost")
		for _, want := range []string{"speed-up", "cost-effectiveness", "Myrinet"} {
			if !strings.Contains(out, want) {
				t.Errorf("predict output missing %q", want)
			}
		}
	})
	t.Run("microbench", func(t *testing.T) {
		out := runBuilt(t, dir, "microbench", "-table", "1")
		if !strings.Contains(out, "Table 1") || !strings.Contains(out, "adjusted") {
			t.Error("microbench table 1 missing")
		}
	})
	t.Run("sciddlegen", func(t *testing.T) {
		out := runBuilt(t, dir, "sciddlegen", "-pkg", "demo", "internal/md/opal.idl")
		if !strings.Contains(out, "type OpalHandler interface") {
			t.Error("sciddlegen output missing handler interface")
		}
	})
	t.Run("figures-subset", func(t *testing.T) {
		outDir := t.TempDir()
		runBuilt(t, dir, "figures", "-scale", "0.08", "-steps", "2",
			"-maxp", "3", "-only", "fig3,space,table2", "-out", outDir)
		for _, f := range []string{"fig3_parameter_space.txt", "sec26_space.txt", "table2_communication.txt"} {
			if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
				t.Errorf("missing %s: %v", f, err)
			}
		}
	})
}

func TestExampleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		path string
		args []string
		want string
	}{
		{"./examples/quickstart", nil, "virtual J90 time"},
		{"./examples/antennapedia", []string{"-scale", "0.08"}, "idle spikes"},
		{"./examples/middleware", nil, "accounting overhead"},
		{"./examples/tcpcluster", nil, "remote servers"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", c.path}, c.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.path, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%s", c.path, c.want, out)
			}
		})
	}
}
