package opalperf

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"opalperf/internal/core"
	"opalperf/internal/fault"
	"opalperf/internal/harness"
	"opalperf/internal/md"
	"opalperf/internal/oracle"
	"opalperf/internal/platform"
	"opalperf/internal/telemetry"
)

// supervisedSpec is a self-healing run with an administrative kill and
// periodic checkpoints — the acceptance scenario of the telemetry plane.
func supervisedSpec(ckptSink func(*md.Checkpoint) error) harness.RunSpec {
	return harness.RunSpec{
		Platform: platform.J90(),
		Sys:      benchSystem("small"),
		Opts: md.Options{
			Cutoff:          harness.EffectiveCutoff,
			UpdateEvery:     2,
			Minimize:        true,
			SelfHeal:        true,
			FaultTolerant:   true,
			Kills:           fault.KillSchedule{3: {1}}.Func(),
			CheckpointEvery: 4,
			CheckpointSink:  ckptSink,
		},
		Servers: 3,
		Steps:   8,
	}
}

// TestTelemetryPhysicsBitIdentical pins the plane's core invariant:
// telemetry observes a run, it never feeds back into it.  The same
// supervised kill-schedule run with the journal, metrics, flight recorder,
// the model oracle AND the comm-matrix instrument armed must produce
// bit-identical energies to the bare run — the observers read the trace
// recorder and the counters but touch neither physics nor virtual time.
func TestTelemetryPhysicsBitIdentical(t *testing.T) {
	run := func(withTelemetry bool) *md.Result {
		spec := supervisedSpec(func(cp *md.Checkpoint) error { return nil })
		if withTelemetry {
			telemetry.SetEnabled(true)
			telemetry.StartJournal(io.Discard, 64)
			defer telemetry.StopJournal()
			defer telemetry.SetEnabled(false)
			telemetry.EnableMatrix(true)
			telemetry.ResetMatrix()
			telemetry.SetMatrixEmitEvery(2)
			defer func() {
				telemetry.SetMatrixEmitEvery(0)
				telemetry.EnableMatrix(false)
				telemetry.ResetMatrix()
			}()
			spec.Oracle = oracle.New(oracle.Config{
				Machine:          core.MachineFor(platform.J90(), spec.Sys.Gamma()),
				Sys:              spec.Sys,
				Cutoff:           harness.EffectiveCutoff,
				UpdateEvery:      2,
				Servers:          spec.Servers,
				Window:           2,
				RecalibrateEvery: 2,
			})
		}
		out, err := harness.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return out.Result
	}
	bare := run(false)
	observed := run(true)
	if len(bare.Steps) != len(observed.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(bare.Steps), len(observed.Steps))
	}
	for i := range bare.Steps {
		if bare.Steps[i].ETotal != observed.Steps[i].ETotal ||
			bare.Steps[i].EVdw != observed.Steps[i].EVdw ||
			bare.Steps[i].ECoul != observed.Steps[i].ECoul {
			t.Fatalf("step %d energies differ with telemetry on: %+v vs %+v",
				i, bare.Steps[i], observed.Steps[i])
		}
	}
	for i := range bare.FinalPos {
		if bare.FinalPos[i] != observed.FinalPos[i] {
			t.Fatalf("final position %d differs with telemetry on", i)
		}
	}
}

// TestTelemetryJournalOfSupervisedRun drives the acceptance scenario: a
// -supervise run with a kill schedule and periodic checkpoints produces a
// JSONL journal containing the fault, respawn and checkpoint lifecycle
// events, all valid JSON and stamped with the run ID.
func TestTelemetryJournalOfSupervisedRun(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	telemetry.SetRun("test-run")
	var buf bytes.Buffer
	telemetry.StartJournal(&buf, 64)
	defer telemetry.StopJournal()

	if _, err := harness.Run(supervisedSpec(func(cp *md.Checkpoint) error { return nil })); err != nil {
		t.Fatal(err)
	}

	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var ev struct {
			Run  string `json:"run"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line is not valid JSON: %v\n%s", err, line)
		}
		if ev.Run != "test-run" {
			t.Fatalf("event missing run id: %s", line)
		}
		types[ev.Type]++
	}
	for _, want := range []string{
		"run_start", "fault_injected", "supervisor_healing", "respawn",
		"supervisor_healthy", "checkpoint", "run_end",
	} {
		if types[want] == 0 {
			t.Fatalf("journal has no %q event; got %v\n%s", want, types, buf.String())
		}
	}
	if types["checkpoint"] != 2 { // steps 4 and 8 at CheckpointEvery=4
		t.Fatalf("checkpoint events = %d, want 2 (%v)", types["checkpoint"], types)
	}
	// The flight recorder mirrors the journal, line for line.
	lines := strings.Count(buf.String(), "\n")
	if n := telemetry.Current().Flight().Len(); n != lines {
		t.Fatalf("flight recorder holds %d events, journal wrote %d lines", n, lines)
	}
}

// TestTelemetryMetricsOfSupervisedRun checks the counters the supervised
// run must move: faults injected, deaths, respawns, steps and checkpoints
// all appear in the Prometheus exposition.
func TestTelemetryMetricsOfSupervisedRun(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	telemetry.StartJournal(nil, 64)
	defer telemetry.StopJournal()

	before := telemetry.SupRespawns.Value()
	faultsBefore := telemetry.FaultsInjected.With("admin_kill").Value()
	stepsBefore := telemetry.MDSteps.Value()
	ckptBefore := telemetry.MDCheckpoints.Value()
	if _, err := harness.Run(supervisedSpec(func(cp *md.Checkpoint) error { return nil })); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.SupRespawns.Value() - before; got != 1 {
		t.Errorf("respawns counted = %d, want 1", got)
	}
	if got := telemetry.FaultsInjected.With("admin_kill").Value() - faultsBefore; got != 1 {
		t.Errorf("admin kills counted = %d, want 1", got)
	}
	if got := telemetry.MDSteps.Value() - stepsBefore; got != 8 {
		t.Errorf("steps counted = %d, want 8", got)
	}
	if got := telemetry.MDCheckpoints.Value() - ckptBefore; got != 2 {
		t.Errorf("checkpoints counted = %d, want 2", got)
	}

	var expo bytes.Buffer
	telemetry.Default.WritePrometheus(&expo)
	for _, want := range []string{
		"opal_supervisor_respawns_total",
		`opal_faults_injected_total{kind="admin_kill"}`,
		"opal_sciddle_call_seconds_bucket",
		"opal_md_step_seconds_count",
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
